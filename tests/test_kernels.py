"""Unit tests for the 4 kernel measures (paper Section 8)."""

import numpy as np
import pytest

from repro.distances import get_measure, list_measures
from repro.distances.kernels import (
    gak,
    gak_log_kernel,
    kdtw,
    kdtw_similarity,
    rbf,
    rbf_kernel,
    sink,
    sink_similarity,
)


class TestRBF:
    def test_kernel_value_known(self):
        x, y = np.zeros(2), np.array([3.0, 4.0])
        assert rbf_kernel(x, y, gamma=0.01) == pytest.approx(np.exp(-0.25))

    def test_distance_zero_for_identical(self, sine_pair):
        x, _ = sine_pair
        assert rbf(x, x) == 0.0

    def test_rank_equivalent_to_ed(self, rng):
        """The Table 6 footnote in code: RBF inherits ED's 1-NN ranking."""
        from repro.classification import dissimilarity_matrix, one_nn_predict

        train = rng.normal(size=(10, 20))
        test = rng.normal(size=(5, 20))
        labels = np.arange(10)
        ed_pred = one_nn_predict(
            dissimilarity_matrix("euclidean", test, train), labels
        )
        rbf_pred = one_nn_predict(
            dissimilarity_matrix("rbf", test, train, gamma=0.01), labels
        )
        assert np.array_equal(ed_pred, rbf_pred)

    def test_matrix_matches_scalar(self, rng):
        measure = get_measure("rbf")
        X, Y = rng.normal(size=(4, 16)), rng.normal(size=(3, 16))
        matrix = measure.pairwise(X, Y, gamma=0.1)
        for i in range(4):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(measure(X[i], Y[j], gamma=0.1))


class TestSINK:
    def test_self_similarity_is_one(self, sine_pair):
        x, _ = sine_pair
        assert sink_similarity(x, x, gamma=5.0) == pytest.approx(1.0)

    def test_similarity_bounded(self, random_pairs):
        for x, y in random_pairs:
            s = sink_similarity(x, y, gamma=5.0)
            assert 0.0 <= s <= 1.0 + 1e-9

    def test_shift_invariance(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=48)
        shifted = np.roll(x, 11)
        assert sink(x, shifted, gamma=10.0) < sink(x, rng.normal(size=48), gamma=10.0)

    def test_large_gamma_no_overflow(self, sine_pair):
        x, y = sine_pair
        assert np.isfinite(sink(x, y, gamma=20.0))

    def test_symmetric(self, random_pairs):
        for x, y in random_pairs:
            assert sink(x, y) == pytest.approx(sink(y, x), abs=1e-9)


class TestGAK:
    def test_zero_for_identical(self, sine_pair):
        x, _ = sine_pair
        assert gak(x, x) == pytest.approx(0.0, abs=1e-9)

    def test_nonnegative(self, random_pairs):
        for x, y in random_pairs:
            assert gak(x, y, gamma=0.5) >= 0.0

    def test_symmetric(self, random_pairs):
        for x, y in random_pairs:
            assert gak(x, y, gamma=0.5) == pytest.approx(gak(y, x, gamma=0.5))

    def test_no_underflow_on_long_series(self):
        t = np.linspace(0, 20, 400)
        x, y = np.sin(t), np.sin(t + 0.4)
        assert np.isfinite(gak_log_kernel(x, y, gamma=0.1))
        assert np.isfinite(gak(x, y, gamma=0.1))

    def test_similar_pairs_closer_than_dissimilar(self):
        t = np.linspace(0, 6, 40)
        x = np.sin(t)
        near = np.sin(t + 0.1)
        far = np.cos(3 * t) + 2.0
        assert gak(x, near, gamma=0.5) < gak(x, far, gamma=0.5)

    def test_unequal_lengths_supported(self):
        assert np.isfinite(gak(np.sin(np.linspace(0, 6, 30)), np.sin(np.linspace(0, 6, 40))))


class TestKDTW:
    def test_self_similarity_is_one(self, sine_pair):
        x, _ = sine_pair
        assert kdtw_similarity(x, x, gamma=0.125) == pytest.approx(1.0)

    def test_zero_distance_for_identical(self, sine_pair):
        x, _ = sine_pair
        assert kdtw(x, x, gamma=0.125) == pytest.approx(0.0, abs=1e-9)

    def test_symmetric(self, random_pairs):
        for x, y in random_pairs:
            assert kdtw(x, y) == pytest.approx(kdtw(y, x), rel=1e-6)

    def test_no_underflow_on_long_series(self):
        t = np.linspace(0, 20, 400)
        x, y = np.sin(t), np.sin(t + 0.4)
        assert np.isfinite(kdtw(x, y, gamma=0.125))

    def test_warp_tolerant(self):
        t = np.linspace(0, 2 * np.pi, 40)
        x = np.sin(t)
        warped = np.sin(t + 0.3 * np.sin(t / 2.0))
        unrelated = np.cos(5 * t) * 2.0
        assert kdtw(x, warped, gamma=0.125) < kdtw(x, unrelated, gamma=0.125)

    def test_matrix_matches_scalar(self, rng):
        measure = get_measure("kdtw")
        X, Y = rng.normal(size=(3, 14)), rng.normal(size=(2, 14))
        matrix = measure.pairwise(X, Y, gamma=0.125)
        for i in range(3):
            for j in range(2):
                assert matrix[i, j] == pytest.approx(
                    measure(X[i], Y[j], gamma=0.125), rel=1e-7
                )


class TestKernelRegistry:
    def test_four_kernel_measures(self):
        assert len(list_measures("kernel")) == 4

    @pytest.mark.parametrize("name", list_measures("kernel"))
    def test_psd_on_small_sample(self, name, rng):
        """Kernel measures must come from p.s.d. similarities (Section 8).

        We reconstruct the similarity matrix from the distance definition
        and check its eigenvalues are nonnegative (up to numerics).
        """
        X = rng.normal(size=(6, 16))
        if name == "rbf":
            sims = np.exp(
                -0.1 * np.array(
                    [[np.sum((a - b) ** 2) for b in X] for a in X]
                )
            )
        elif name == "sink":
            sims = np.array(
                [[sink_similarity(a, b, gamma=5.0) for b in X] for a in X]
            )
        elif name == "kdtw":
            sims = np.array(
                [[kdtw_similarity(a, b, gamma=0.125) for b in X] for a in X]
            )
        else:  # gak: normalized kernel exp(-distance)
            sims = np.exp(
                -np.array([[gak(a, b, gamma=1.0) for b in X] for a in X])
            )
        eigvals = np.linalg.eigvalsh((sims + sims.T) / 2.0)
        assert eigvals.min() > -1e-6, name
