"""Tests for the markdown renderers used by EXPERIMENTS.md."""

import pytest

from repro.evaluation import (
    MeasureVariant,
    RuntimePoint,
    compare_to_baseline,
    run_sweep,
)
from repro.reporting import (
    comparison_table_markdown,
    rank_figure_markdown,
    runtime_figure_markdown,
)
from repro.stats import nemenyi_test


@pytest.fixture(scope="module")
def demo_sweep(tiny_archive):
    variants = [
        MeasureVariant("euclidean", label="ED"),
        MeasureVariant("manhattan", label="Manhattan"),
        MeasureVariant("nccc", label="NCC_c"),
    ]
    return run_sweep(variants, tiny_archive.subset(3))


class TestComparisonMarkdown:
    def test_structure(self, demo_sweep):
        table = compare_to_baseline(demo_sweep, "ED")
        md = comparison_table_markdown(table, "Demo table")
        assert md.startswith("### Demo table")
        assert "| Measure | Better |" in md
        assert "| **ED** (baseline) |" in md
        assert "*3 datasets.*" in md

    def test_one_row_per_candidate(self, demo_sweep):
        table = compare_to_baseline(demo_sweep, "ED")
        md = comparison_table_markdown(table, "T")
        assert md.count("| Manhattan |") == 1
        assert md.count("| NCC_c |") == 1


class TestRankMarkdown:
    def test_structure(self, demo_sweep):
        result = nemenyi_test(demo_sweep.labels, demo_sweep.accuracies)
        md = rank_figure_markdown(result, "Demo ranks")
        assert "Friedman p =" in md
        assert "Nemenyi CD =" in md
        assert "| 1 |" in md
        for name in demo_sweep.labels:
            assert name in md


class TestRuntimeMarkdown:
    def test_rows_rendered(self):
        points = [
            RuntimePoint("ED", 0.65, 0.0001, "O(m)"),
            RuntimePoint("MSM", 0.77, 1.2, "O(m^2)"),
        ]
        md = runtime_figure_markdown(points, "Fig 9")
        assert "| ED | 0.6500 | 0.0001 | O(m) |" in md
        assert "| MSM |" in md
