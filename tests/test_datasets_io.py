"""Round-trip tests for the UCR-format exporter."""

import numpy as np
import pytest

from repro.datasets import (
    SyntheticArchive,
    export_archive,
    load_ucr,
    save_ucr_format,
)
from repro.exceptions import DatasetError


class TestSaveUcrFormat:
    def test_files_created(self, tmp_path, small_dataset):
        folder = save_ucr_format(small_dataset, tmp_path)
        assert (folder / f"{small_dataset.name}_TRAIN.tsv").exists()
        assert (folder / f"{small_dataset.name}_TEST.tsv").exists()

    def test_roundtrip_through_loader(self, tmp_path, small_dataset, monkeypatch):
        save_ucr_format(small_dataset, tmp_path)
        monkeypatch.setenv("UCR_ARCHIVE_PATH", str(tmp_path))
        loaded = load_ucr(small_dataset.name)
        assert loaded.n_train == small_dataset.n_train
        assert loaded.n_test == small_dataset.n_test
        assert loaded.length == small_dataset.length
        assert np.allclose(loaded.train_X, small_dataset.train_X, atol=1e-8)
        assert np.allclose(loaded.test_X, small_dataset.test_X, atol=1e-8)
        assert np.array_equal(loaded.train_y, small_dataset.train_y)

    def test_export_is_idempotent(self, tmp_path, small_dataset):
        first = save_ucr_format(small_dataset, tmp_path)
        second = save_ucr_format(small_dataset, tmp_path)
        assert first == second
        content = (first / f"{small_dataset.name}_TRAIN.tsv").read_text()
        assert content  # written twice without corruption


class TestExportArchive:
    def test_exports_limit_datasets(self, tmp_path):
        archive = SyntheticArchive(n_datasets=5, size_scale=0.4)
        folders = export_archive(archive, tmp_path, limit=3)
        assert len(folders) == 3
        assert all(f.is_dir() for f in folders)

    def test_exported_archive_is_loadable_as_ucr(self, tmp_path, monkeypatch):
        archive = SyntheticArchive(n_datasets=3, size_scale=0.4)
        export_archive(archive, tmp_path)
        monkeypatch.setenv("UCR_ARCHIVE_PATH", str(tmp_path))
        from repro.datasets import list_ucr_datasets

        assert list_ucr_datasets() == sorted(archive.names)
        loaded = load_ucr(archive.names[0])
        original = archive.load(archive.names[0])
        assert np.allclose(loaded.train_X, original.train_X, atol=1e-8)

    def test_empty_archive_rejected(self, tmp_path):
        class Empty:
            names: list = []

        with pytest.raises(DatasetError):
            export_archive(Empty(), tmp_path)
