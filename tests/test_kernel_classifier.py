"""Tests for the kernel ridge classifier (Section 9 extension)."""

import numpy as np
import pytest

from repro.classification.kernel_classifier import (
    KernelRidgeClassifier,
    kernel_matrix,
)
from repro.exceptions import EvaluationError, ParameterError


class TestKernelMatrix:
    @pytest.mark.parametrize("name", ["rbf", "sink", "gak", "kdtw"])
    def test_unit_diagonal(self, name, rng):
        X = rng.normal(size=(5, 16))
        K = kernel_matrix(name, X)
        assert np.allclose(np.diag(K), 1.0, atol=1e-6)

    @pytest.mark.parametrize("name", ["rbf", "sink", "gak", "kdtw"])
    def test_values_in_unit_interval(self, name, rng):
        X = rng.normal(size=(4, 16))
        K = kernel_matrix(name, X)
        assert (K >= -1e-9).all() and (K <= 1.0 + 1e-9).all()

    def test_rectangular_shape(self, rng):
        X = rng.normal(size=(4, 16))
        Y = rng.normal(size=(3, 16))
        assert kernel_matrix("rbf", X, Y).shape == (4, 3)

    def test_unknown_kernel_rejected(self, rng):
        with pytest.raises(ParameterError):
            kernel_matrix("nope", rng.normal(size=(2, 8)))


class TestKernelRidgeClassifier:
    def test_separable_problem_perfect(self, small_dataset):
        clf = KernelRidgeClassifier(kernel="rbf", gamma=0.1).fit(
            small_dataset.train_X, small_dataset.train_y
        )
        assert clf.score(small_dataset.train_X, small_dataset.train_y) > 0.8

    def test_generalizes_to_test_set(self, small_dataset):
        clf = KernelRidgeClassifier(kernel="sink", gamma=5.0).fit(
            small_dataset.train_X, small_dataset.train_y
        )
        acc = clf.score(small_dataset.test_X, small_dataset.test_y)
        assert acc > 2.0 / small_dataset.n_classes

    def test_decision_function_shape(self, small_dataset):
        clf = KernelRidgeClassifier(kernel="rbf", gamma=0.1).fit(
            small_dataset.train_X, small_dataset.train_y
        )
        scores = clf.decision_function(small_dataset.test_X)
        assert scores.shape == (
            small_dataset.n_test,
            small_dataset.n_classes,
        )

    def test_predict_before_fit_rejected(self, small_dataset):
        clf = KernelRidgeClassifier()
        with pytest.raises(EvaluationError):
            clf.predict(small_dataset.test_X)

    def test_single_class_rejected(self, small_dataset):
        clf = KernelRidgeClassifier()
        labels = np.zeros(small_dataset.n_train, dtype=int)
        with pytest.raises(EvaluationError):
            clf.fit(small_dataset.train_X, labels)

    def test_invalid_regularization_rejected(self):
        with pytest.raises(ParameterError):
            KernelRidgeClassifier(regularization=0.0)

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ParameterError):
            KernelRidgeClassifier(kernel="nope")

    def test_shift_invariant_kernel_beats_rbf_on_shifted_data(
        self, shifted_dataset
    ):
        """The Section 9 observation in miniature: with a richer
        classifier, the shift-invariant SINK kernel clearly beats the
        ED-bound RBF on shift-dominated data."""
        sink_clf = KernelRidgeClassifier(kernel="sink", gamma=5.0).fit(
            shifted_dataset.train_X, shifted_dataset.train_y
        )
        rbf_clf = KernelRidgeClassifier(kernel="rbf", gamma=0.1).fit(
            shifted_dataset.train_X, shifted_dataset.train_y
        )
        assert sink_clf.score(
            shifted_dataset.test_X, shifted_dataset.test_y
        ) >= rbf_clf.score(shifted_dataset.test_X, shifted_dataset.test_y)
