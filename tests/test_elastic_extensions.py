"""Tests for the Section 7 elastic extensions (DDTW, WDTW, CID)."""

import numpy as np
import pytest

from repro.distances import get_measure
from repro.distances.elastic import (
    cid,
    cid_factor,
    complexity,
    ddtw,
    derivative,
    dtw,
    wdtw,
)


class TestDerivative:
    def test_constant_series_zero_derivative(self):
        assert np.array_equal(derivative(np.full(10, 3.0)), np.zeros(10))

    def test_linear_series_constant_slope(self):
        x = np.arange(10, dtype=float) * 2.0
        d = derivative(x)
        assert np.allclose(d, 2.0)

    def test_short_series_fallback(self):
        assert np.array_equal(derivative(np.array([1.0, 2.0])), np.zeros(2))

    def test_length_preserved(self, sine_pair):
        x, _ = sine_pair
        assert derivative(x).shape == x.shape


class TestDDTW:
    def test_identity_zero(self, sine_pair):
        x, _ = sine_pair
        assert ddtw(x, x) == 0.0

    def test_alpha_one_is_derivative_dtw(self, sine_pair):
        x, y = sine_pair
        assert ddtw(x, y, delta=100.0, alpha=1.0) == pytest.approx(
            dtw(derivative(x), derivative(y), 100.0)
        )

    def test_alpha_zero_is_plain_dtw(self, sine_pair):
        x, y = sine_pair
        assert ddtw(x, y, delta=100.0, alpha=0.0) == pytest.approx(
            dtw(x, y, 100.0)
        )

    def test_offset_invariance(self, sine_pair):
        """Derivatives kill constant offsets — DDTW's selling point."""
        x, y = sine_pair
        assert ddtw(x, y + 5.0, alpha=1.0) == pytest.approx(
            ddtw(x, y, alpha=1.0)
        )

    def test_registered(self):
        assert get_measure("ddtw").category == "extra"


class TestWDTW:
    def test_identity_zero(self, sine_pair):
        x, _ = sine_pair
        assert wdtw(x, x) == 0.0

    def test_symmetric(self, random_pairs):
        for x, y in random_pairs:
            assert wdtw(x, y, g=0.1) == pytest.approx(wdtw(y, x, g=0.1))

    def test_zero_steepness_is_half_weighted_dtw(self, sine_pair):
        """Jeong's sigmoid weight at g=0 is exactly 1/2 for every phase
        difference, so WDTW collapses to sqrt(1/2) * unconstrained DTW."""
        x, y = sine_pair
        assert wdtw(x, y, g=0.0) == pytest.approx(
            np.sqrt(0.5) * dtw(x, y, delta=100.0)
        )

    def test_weights_increase_with_phase_difference(self):
        """The defining WDTW property: for fixed g > 0 the per-cell weight
        w(|i-j|) is monotonically increasing, so a path forced far off the
        diagonal costs more than the same costs on the diagonal."""
        from math import exp

        m, g = 40, 0.25
        weights = [1.0 / (1.0 + exp(-g * (d - m / 2))) for d in range(m)]
        assert all(b >= a for a, b in zip(weights, weights[1:]))

    def test_nonnegative(self, random_pairs):
        for x, y in random_pairs:
            assert wdtw(x, y) >= 0.0


class TestCID:
    def test_complexity_of_constant_is_zero(self):
        assert complexity(np.full(10, 2.0)) == 0.0

    def test_complexity_monotone_in_roughness(self, rng):
        smooth = np.sin(np.linspace(0, 2 * np.pi, 50))
        rough = smooth + rng.normal(0, 0.5, size=50)
        assert complexity(rough) > complexity(smooth)

    def test_factor_at_least_one(self, random_pairs):
        for x, y in random_pairs:
            assert cid_factor(x, y) >= 1.0

    def test_equal_complexity_factor_one(self, sine_pair):
        x, _ = sine_pair
        assert cid_factor(x, x) == pytest.approx(1.0)

    def test_cid_scales_base_distance(self, rng):
        smooth = np.sin(np.linspace(0, 2 * np.pi, 50))
        rough = smooth + rng.normal(0, 0.5, size=50)
        ed = float(np.linalg.norm(smooth - rough))
        assert cid(smooth, rough) == pytest.approx(
            ed * cid_factor(smooth, rough)
        )

    def test_cid_with_other_base_measure(self, sine_pair):
        x, y = sine_pair
        value = cid(x, y, base="manhattan")
        assert value == pytest.approx(
            float(np.abs(x - y).sum()) * cid_factor(x, y)
        )

    def test_registered_measure_matches_function(self, sine_pair):
        x, y = sine_pair
        assert get_measure("cid")(x, y) == pytest.approx(cid(x, y))
