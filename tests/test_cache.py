"""Tests for the dissimilarity-matrix cache."""

import numpy as np
import pytest

from repro.evaluation.cache import MatrixCache


@pytest.fixture()
def cache(tmp_path):
    return MatrixCache(tmp_path / "matrices")


class TestMatrixCache:
    def test_miss_then_hit(self, cache, small_dataset):
        E1 = cache.test_matrix(small_dataset, "euclidean")
        assert (cache.hits, cache.misses) == (0, 1)
        E2 = cache.test_matrix(small_dataset, "euclidean")
        assert (cache.hits, cache.misses) == (1, 1)
        assert np.array_equal(E1, E2)

    def test_cached_equals_direct(self, cache, small_dataset):
        from repro.classification import dissimilarity_matrix

        E = cache.test_matrix(small_dataset, "lorentzian")
        direct = dissimilarity_matrix(
            "lorentzian", small_dataset.test_X, small_dataset.train_X
        )
        assert np.allclose(E, direct)

    def test_params_partition_keys(self, cache, small_dataset):
        a = cache.test_matrix(small_dataset, "dtw", delta=0.0)
        b = cache.test_matrix(small_dataset, "dtw", delta=100.0)
        assert cache.misses == 2
        assert not np.allclose(a, b)

    def test_normalization_partitions_keys(self, cache, small_dataset):
        cache.test_matrix(small_dataset, "euclidean", normalization="minmax")
        cache.test_matrix(small_dataset, "euclidean", normalization="zscore")
        assert cache.misses == 2

    def test_train_and_test_matrices_distinct(self, cache, small_dataset):
        W = cache.train_matrix(small_dataset, "euclidean")
        E = cache.test_matrix(small_dataset, "euclidean")
        assert W.shape == (small_dataset.n_train,) * 2
        assert E.shape == (small_dataset.n_test, small_dataset.n_train)
        assert cache.misses == 2

    def test_measure_aliases_share_entries(self, cache, small_dataset):
        cache.test_matrix(small_dataset, "sbd")
        cache.test_matrix(small_dataset, "nccc")
        assert (cache.hits, cache.misses) == (1, 1)

    def test_data_content_in_key(self, cache, small_dataset, shifted_dataset):
        cache.test_matrix(small_dataset, "euclidean")
        cache.test_matrix(shifted_dataset, "euclidean")
        assert cache.misses == 2

    def test_clear(self, cache, small_dataset):
        cache.test_matrix(small_dataset, "euclidean")
        assert cache.size_bytes() > 0
        removed = cache.clear()
        assert removed == 1
        assert cache.size_bytes() == 0
        cache.test_matrix(small_dataset, "euclidean")
        assert cache.misses == 1

    def test_persistence_across_instances(self, tmp_path, small_dataset):
        first = MatrixCache(tmp_path / "store")
        E1 = first.test_matrix(small_dataset, "euclidean")
        second = MatrixCache(tmp_path / "store")
        E2 = second.test_matrix(small_dataset, "euclidean")
        assert second.hits == 1 and second.misses == 0
        assert np.array_equal(E1, E2)


class TestCacheCorruption:
    """Corrupt/truncated .npz files must self-heal, not raise."""

    def _corrupt_all(self, cache):
        files = list(cache.directory.glob("*.npz"))
        assert files
        for path in files:
            path.write_bytes(b"this is not a zip archive")
        return files

    def test_corrupt_file_recomputed(self, cache, small_dataset):
        E1 = cache.test_matrix(small_dataset, "euclidean")
        self._corrupt_all(cache)
        E2 = cache.test_matrix(small_dataset, "euclidean")
        assert np.allclose(E1, E2)
        assert cache.corrupt == 1
        assert (cache.hits, cache.misses) == (0, 2)

    def test_corrupt_file_replaced_with_valid_one(self, cache, small_dataset):
        cache.test_matrix(small_dataset, "euclidean")
        (path,) = self._corrupt_all(cache)
        cache.test_matrix(small_dataset, "euclidean")
        assert path.exists()  # rewritten
        E3 = cache.test_matrix(small_dataset, "euclidean")
        assert cache.hits == 1  # third call is a clean hit
        assert E3.shape == (small_dataset.n_test, small_dataset.n_train)

    def test_truncated_npz_recovered(self, cache, small_dataset):
        cache.test_matrix(small_dataset, "euclidean")
        (path,) = list(cache.directory.glob("*.npz"))
        path.write_bytes(path.read_bytes()[:20])  # valid magic, cut short
        E = cache.test_matrix(small_dataset, "euclidean")
        assert E.shape == (small_dataset.n_test, small_dataset.n_train)
        assert cache.corrupt == 1

    def test_corrupt_event_counted_on_bus(self, cache, small_dataset):
        from repro.observability import Recorder, get_bus

        cache.test_matrix(small_dataset, "euclidean")
        self._corrupt_all(cache)
        recorder = Recorder()
        with get_bus().sink(recorder):
            cache.test_matrix(small_dataset, "euclidean")
        assert recorder.counters()["cache.corrupt"] == 1
        assert recorder.counters()["cache.miss"] == 1

    def test_stats_snapshot(self, cache, small_dataset):
        cache.test_matrix(small_dataset, "euclidean")
        cache.test_matrix(small_dataset, "euclidean")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["corrupt"] == 0
        assert stats["size_bytes"] > 0
