"""Unit tests for the 7 elastic measures (paper Section 7)."""

import numpy as np
import pytest

from repro.distances import get_measure, list_measures
from repro.distances.elastic import (
    dtw,
    dtw_path,
    edr,
    erp,
    lcss,
    msm,
    swale,
    swale_score,
    twe,
)
from repro.distances.elastic._dp import band_width


class TestBandWidth:
    def test_full_window(self):
        assert band_width(50, 50, 100.0) == 50

    def test_percentage_window(self):
        assert band_width(100, 100, 10.0) == 10

    def test_zero_window_is_diagonal(self):
        assert band_width(50, 50, 0.0) == 0

    def test_widened_to_length_difference(self):
        assert band_width(50, 40, 0.0) == 10


class TestDTW:
    def test_identity_zero(self, sine_pair):
        x, _ = sine_pair
        assert dtw(x, x) == 0.0

    def test_symmetric(self, random_pairs):
        for x, y in random_pairs:
            assert dtw(x, y) == pytest.approx(dtw(y, x))

    def test_unconstrained_leq_euclidean(self, random_pairs):
        """Full DTW can only do better than the diagonal alignment."""
        for x, y in random_pairs:
            ed = float(np.linalg.norm(x - y))
            assert dtw(x, y, delta=100.0) <= ed + 1e-9

    def test_band_monotone_in_window(self, random_pairs):
        """Wider bands allow more paths, so distance cannot increase."""
        for x, y in random_pairs:
            d0 = dtw(x, y, delta=0.0)
            d10 = dtw(x, y, delta=10.0)
            d100 = dtw(x, y, delta=100.0)
            assert d100 <= d10 + 1e-9 <= d0 + 2e-9

    def test_zero_window_equals_euclidean(self, random_pairs):
        for x, y in random_pairs:
            assert dtw(x, y, delta=0.0) == pytest.approx(
                float(np.linalg.norm(x - y))
            )

    def test_absorbs_local_warp(self):
        t = np.linspace(0, 2 * np.pi, 40)
        x = np.sin(t)
        # The same sine sampled on a locally stretched clock.
        warped_t = t + 0.3 * np.sin(t / 2.0)
        y = np.sin(warped_t)
        assert dtw(x, y, delta=20.0) < 0.5 * float(np.linalg.norm(x - y))

    def test_unequal_lengths_supported(self):
        assert np.isfinite(dtw(np.sin(np.linspace(0, 6, 30)), np.sin(np.linspace(0, 6, 45))))

    def test_known_small_example(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 2.0])
        # Optimal path: (0,0)=0, (1,?) -> 1 matched to 2 costs 1, 2->2 costs 0
        assert dtw(x, y) == pytest.approx(1.0)

    def test_path_endpoints(self, sine_pair):
        x, y = sine_pair
        d, path = dtw_path(x, y, delta=100.0)
        assert path[0] == (0, 0)
        assert path[-1] == (x.shape[0] - 1, y.shape[0] - 1)
        assert d == pytest.approx(dtw(x, y, delta=100.0))

    def test_path_monotone_contiguous(self, sine_pair):
        x, y = sine_pair
        _, path = dtw_path(x, y)
        for (i0, j0), (i1, j1) in zip(path, path[1:]):
            assert (i1 - i0, j1 - j0) in {(0, 1), (1, 0), (1, 1)}


class TestLCSS:
    def test_identical_zero(self, sine_pair):
        x, _ = sine_pair
        assert lcss(x, x, epsilon=0.01) == 0.0

    def test_bounded_unit_interval(self, random_pairs):
        for x, y in random_pairs:
            assert 0.0 <= lcss(x, y) <= 1.0

    def test_nothing_matches_at_tiny_epsilon(self):
        x = np.zeros(10)
        y = np.ones(10)
        assert lcss(x, y, epsilon=0.5) == 1.0

    def test_everything_matches_at_huge_epsilon(self, random_pairs):
        for x, y in random_pairs:
            assert lcss(x, y, epsilon=100.0, delta=100.0) == 0.0

    def test_monotone_in_epsilon(self, random_pairs):
        for x, y in random_pairs:
            assert lcss(x, y, epsilon=0.5) <= lcss(x, y, epsilon=0.1) + 1e-12


class TestEDR:
    def test_identical_zero(self, sine_pair):
        x, _ = sine_pair
        assert edr(x, x, epsilon=0.01) == 0.0

    def test_upper_bounded_by_length(self, random_pairs):
        for x, y in random_pairs:
            assert edr(x, y, epsilon=0.001) <= max(x.shape[0], y.shape[0])

    def test_counts_mismatches(self):
        x = np.array([0.0, 0.0, 0.0])
        y = np.array([0.0, 5.0, 0.0])
        assert edr(x, y, epsilon=0.1) == 1.0

    def test_gap_cost_for_unequal_lengths(self):
        x = np.zeros(5)
        y = np.zeros(3)
        assert edr(x, y, epsilon=0.1) == 2.0


class TestERP:
    def test_identical_zero(self, sine_pair):
        x, _ = sine_pair
        assert erp(x, x) == 0.0

    def test_symmetric(self, random_pairs):
        for x, y in random_pairs:
            assert erp(x, y) == pytest.approx(erp(y, x))

    def test_triangle_inequality_sampled(self, rng):
        """ERP is a metric [27]; spot-check the triangle inequality."""
        for _ in range(15):
            x, y, z = (rng.normal(size=12) for _ in range(3))
            assert erp(x, z) <= erp(x, y) + erp(y, z) + 1e-9

    def test_empty_against_gap_value(self):
        """Deleting everything costs the distance to the gap constant."""
        x = np.array([1.0, -2.0, 3.0])
        assert erp(x, np.array([0.0])) == pytest.approx(
            np.abs(x).sum() - 0.0, abs=1e-12
        )

    def test_upper_bounded_by_manhattan(self, random_pairs):
        for x, y in random_pairs:
            assert erp(x, y) <= np.abs(x - y).sum() + 1e-9


class TestMSM:
    def test_identical_zero(self, sine_pair):
        x, _ = sine_pair
        assert msm(x, x) == 0.0

    def test_symmetric(self, random_pairs):
        for x, y in random_pairs:
            assert msm(x, y, c=0.5) == pytest.approx(msm(y, x, c=0.5))

    def test_triangle_inequality_sampled(self, rng):
        """MSM is a metric [137]; spot-check the triangle inequality."""
        for _ in range(15):
            x, y, z = (rng.normal(size=10) for _ in range(3))
            assert msm(x, z, c=0.5) <= msm(x, y, c=0.5) + msm(y, z, c=0.5) + 1e-9

    def test_single_move_costs_value_change(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.0, 2.5, 3.0])
        assert msm(x, y, c=10.0) == pytest.approx(0.5)

    def test_split_cheaper_than_move_when_between(self):
        # Aligning [1, 2] with [1, 1, 2]: a split (cost c) beats any move.
        x = np.array([1.0, 2.0])
        y = np.array([1.0, 1.0, 2.0])
        assert msm(x, y, c=0.1) == pytest.approx(0.1)

    def test_monotone_in_cost(self, random_pairs):
        for x, y in random_pairs:
            assert msm(x, y, c=0.1) <= msm(x, y, c=1.0) + 1e-12


class TestTWE:
    def test_identical_zero(self, sine_pair):
        x, _ = sine_pair
        assert twe(x, x) == 0.0

    def test_symmetric(self, random_pairs):
        for x, y in random_pairs:
            assert twe(x, y) == pytest.approx(twe(y, x))

    def test_stiffness_penalizes_warping(self):
        t = np.linspace(0, 2 * np.pi, 30)
        x = np.sin(t)
        y = np.roll(np.sin(t), 4)
        soft = twe(x, y, lam=0.0, nu=1e-5)
        stiff = twe(x, y, lam=0.0, nu=1.0)
        assert stiff >= soft

    def test_triangle_inequality_sampled(self, rng):
        """TWE is a metric for nu > 0 [92]."""
        for _ in range(15):
            x, y, z = (rng.normal(size=10) for _ in range(3))
            assert twe(x, z) <= twe(x, y) + twe(y, z) + 1e-9


class TestSwale:
    def test_score_of_identical_is_full_reward(self, sine_pair):
        x, _ = sine_pair
        assert swale_score(x, x, epsilon=0.01, r=1.0) == x.shape[0]

    def test_distance_is_negated_score(self, random_pairs):
        for x, y in random_pairs:
            assert swale(x, y) == pytest.approx(-swale_score(x, y))

    def test_mismatch_pays_penalty(self):
        x = np.zeros(3)
        y = np.full(3, 10.0)
        # No matches possible: best alignment deletes everything.
        assert swale_score(x, y, epsilon=0.1, p=5.0) == -30.0

    def test_reward_scales_matches(self, sine_pair):
        x, _ = sine_pair
        assert swale_score(x, x, epsilon=0.01, r=2.0) == 2.0 * x.shape[0]


class TestElasticRegistry:
    def test_seven_elastic_measures(self):
        assert len(list_measures("elastic")) == 7

    @pytest.mark.parametrize("name", list_measures("elastic"))
    def test_callable_via_registry(self, name, sine_pair):
        x, y = sine_pair
        assert np.isfinite(get_measure(name)(x, y))

    def test_dtw_grid_is_table4(self):
        grid = get_measure("dtw").param_grid()
        deltas = [combo["delta"] for combo in grid]
        assert deltas[:3] == [0.0, 1.0, 2.0] and deltas[-1] == 100.0
        assert len(deltas) == 22

    def test_elastic_beats_lockstep_on_warped_data(self, warped_dataset):
        """On warp-dominated data the best elastic measure must beat the
        lock-step baseline (the terrain misconceptions M3/M4 live on)."""
        from repro.classification import dissimilarity_matrix, one_nn_accuracy

        ds = warped_dataset
        acc = {}
        for name, params in (
            ("euclidean", {}),
            ("dtw", {"delta": 20.0}),
            ("msm", {"c": 0.5}),
        ):
            E = dissimilarity_matrix(name, ds.test_X, ds.train_X, **params)
            acc[name] = one_nn_accuracy(E, ds.test_y, ds.train_y)
        assert max(acc["dtw"], acc["msm"]) >= acc["euclidean"]
