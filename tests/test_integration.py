"""Integration tests: the full paper pipeline at miniature scale.

Each test runs an end-to-end slice of one of the paper's experiments —
datasets -> normalization -> distance matrices -> 1-NN -> statistics ->
report — asserting the qualitative findings the synthetic archive is
designed to preserve.
"""

import numpy as np
import pytest

import repro
from repro.evaluation import (
    MeasureVariant,
    compare_to_baseline,
    run_sweep,
)
from repro.reporting import format_comparison_table, format_rank_figure
from repro.stats import nemenyi_test


@pytest.fixture(scope="module")
def archive_datasets(tiny_archive):
    return tiny_archive.subset(6)


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        assert callable(repro.distance)
        assert callable(repro.one_nn_accuracy)

    def test_quickstart_flow(self, archive_datasets):
        dataset = archive_datasets[0]
        sbd = repro.get_measure("sbd")
        E = sbd.pairwise(dataset.test_X, dataset.train_X)
        acc = repro.one_nn_accuracy(E, dataset.test_y, dataset.train_y)
        assert 0.0 <= acc <= 1.0

    def test_census_totals_71_measures(self):
        counts = repro.distances.category_counts()
        direct = (
            counts["lockstep"] + counts["sliding"] + counts["elastic"]
            + counts["kernel"]
        )
        assert direct == 67
        assert len(repro.list_embeddings()) == 4  # 67 + 4 = 71


class TestMiniTable2:
    """Lock-step vs ED baseline: the misconception-M2 slice."""

    def test_l1_family_at_least_matches_ed(self, archive_datasets):
        variants = [
            MeasureVariant("euclidean", label="ED"),
            MeasureVariant("lorentzian", label="Lorentzian"),
            MeasureVariant("manhattan", label="Manhattan"),
            MeasureVariant("avgl1linf", label="AvgL1Linf"),
        ]
        sweep = run_sweep(variants, archive_datasets)
        means = sweep.mean_accuracy()
        assert means["Lorentzian"] >= means["ED"] - 0.02
        table = compare_to_baseline(sweep, "ED")
        text = format_comparison_table(table, "Mini Table 2")
        assert "Lorentzian" in text


class TestMiniTable3:
    """Sliding vs lock-step: the misconception-M3 slice."""

    def test_sbd_wins_on_shifted_datasets(self, tiny_archive):
        shifted = [
            ds for ds in tiny_archive
            if ds.metadata.get("shift_frac", 0) > 0.1
        ]
        assert shifted, "archive must contain shift-profile datasets"
        sweep = run_sweep(
            [
                MeasureVariant("euclidean", label="ED"),
                MeasureVariant("nccc", label="NCC_c"),
            ],
            shifted,
        )
        means = sweep.mean_accuracy()
        assert means["NCC_c"] > means["ED"]


class TestMiniTable5:
    """Elastic vs NCC_c, supervised and unsupervised."""

    def test_supervised_and_unsupervised_rows(self, archive_datasets):
        datasets = archive_datasets[:3]
        variants = [
            MeasureVariant("nccc", label="NCC_c"),
            MeasureVariant(
                "msm", params={"c": 0.5}, label="MSM-fixed"
            ),
            MeasureVariant(
                "msm",
                tuning="loocv",
                grid=[{"c": 0.1}, {"c": 0.5}, {"c": 1.0}],
                label="MSM-loocv",
            ),
        ]
        sweep = run_sweep(variants, datasets)
        table = compare_to_baseline(sweep, "NCC_c")
        labels = [row.label for row in table.rows]
        assert "MSM-fixed" in labels and "MSM-loocv" in labels


class TestMiniFigures:
    def test_rank_figure_renders_for_measure_panel(self, archive_datasets):
        variants = [
            MeasureVariant("euclidean", label="ED"),
            MeasureVariant("lorentzian", label="Lorentzian"),
            MeasureVariant("nccc", label="NCC_c"),
            MeasureVariant("dtw", params={"delta": 10.0}, label="DTW-10"),
        ]
        sweep = run_sweep(variants, archive_datasets)
        result = nemenyi_test(sweep.labels, sweep.accuracies)
        text = format_rank_figure(result, "Mini Figure 5")
        assert "CD=" in text and "DTW-10" in text


class TestNormalizationInteraction:
    """The M1 slice: some measures only work under MinMax-style scaling."""

    def test_emanon4_prefers_minmax_over_zscore(self, tiny_archive):
        datasets = tiny_archive.subset(4)
        sweep = run_sweep(
            [
                MeasureVariant("emanon4", normalization="minmax", label="E4+minmax"),
                MeasureVariant("emanon4", normalization="zscore", label="E4+zscore"),
            ],
            datasets,
        )
        means = sweep.mean_accuracy()
        # The M1 claim is that the normalization *interacts* with the
        # measure — which scaling wins is data-dependent (the paper's
        # archive favors MinMax for Emanon4), but the choice must matter.
        assert abs(means["E4+minmax"] - means["E4+zscore"]) > 0.005
        assert means["E4+minmax"] > 0.25  # well above falling apart
