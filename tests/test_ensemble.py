"""Tests for the Elastic Ensemble-style classifier."""

import numpy as np
import pytest

from repro.classification.ensemble import (
    ElasticEnsemble,
    default_elastic_ensemble,
)
from repro.evaluation import MeasureVariant
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def fitted_ensemble(small_dataset):
    members = [
        MeasureVariant("euclidean", label="ED"),
        MeasureVariant("nccc", label="NCC_c"),
        MeasureVariant("msm", params={"c": 0.5}, label="MSM"),
    ]
    return ElasticEnsemble(members).fit(small_dataset)


class TestConstruction:
    def test_empty_member_list_rejected(self):
        with pytest.raises(EvaluationError):
            ElasticEnsemble([])

    def test_embedding_members_rejected(self, small_dataset):
        ensemble = ElasticEnsemble([MeasureVariant("grail")])
        with pytest.raises(EvaluationError):
            ensemble.fit(small_dataset)

    def test_predict_before_fit_rejected(self, small_dataset):
        ensemble = ElasticEnsemble([MeasureVariant("euclidean")])
        with pytest.raises(EvaluationError):
            ensemble.predict(small_dataset.test_X)

    def test_default_members(self):
        ensemble = default_elastic_ensemble()
        names = {v.measure for v in ensemble.variants}
        assert names == {"msm", "twe", "erp", "dtw", "nccc"}


class TestFitting:
    def test_weights_are_loo_accuracies(self, fitted_ensemble, small_dataset):
        from repro.classification import (
            dissimilarity_matrix,
            leave_one_out_accuracy,
        )

        weights = fitted_ensemble.member_weights()
        W = dissimilarity_matrix("euclidean", small_dataset.train_X)
        expected = leave_one_out_accuracy(W, small_dataset.train_y)
        assert weights["ED"] == pytest.approx(expected)

    def test_loocv_member_tunes(self, small_dataset):
        ensemble = ElasticEnsemble(
            [
                MeasureVariant(
                    "dtw", tuning="loocv",
                    grid=[{"delta": 0.0}, {"delta": 10.0}],
                    label="DTW",
                )
            ]
        ).fit(small_dataset)
        assert ensemble.members[0].params["delta"] in (0.0, 10.0)


class TestPrediction:
    def test_predictions_are_training_classes(self, fitted_ensemble, small_dataset):
        predictions = fitted_ensemble.predict(small_dataset.test_X)
        assert set(predictions.tolist()) <= set(
            np.unique(small_dataset.train_y).tolist()
        )

    def test_score_in_unit_interval(self, fitted_ensemble, small_dataset):
        acc = fitted_ensemble.score(small_dataset.test_X, small_dataset.test_y)
        assert 0.0 <= acc <= 1.0

    def test_ensemble_at_least_matches_worst_member(self, small_dataset):
        """The weighted vote should not collapse below the weakest member
        on data where members broadly agree."""
        members = [
            MeasureVariant("euclidean", label="ED"),
            MeasureVariant("nccc", label="NCC_c"),
        ]
        ensemble = ElasticEnsemble(members).fit(small_dataset)
        member_scores = []
        from repro.classification import dissimilarity_matrix, one_nn_accuracy

        for variant in members:
            E = dissimilarity_matrix(
                variant.measure, small_dataset.test_X, small_dataset.train_X
            )
            member_scores.append(
                one_nn_accuracy(E, small_dataset.test_y, small_dataset.train_y)
            )
        assert ensemble.score(
            small_dataset.test_X, small_dataset.test_y
        ) >= min(member_scores) - 0.1

    def test_single_member_equals_that_member(self, small_dataset):
        from repro.classification import dissimilarity_matrix, one_nn_predict

        ensemble = ElasticEnsemble(
            [MeasureVariant("lorentzian", label="L")]
        ).fit(small_dataset)
        E = dissimilarity_matrix(
            "lorentzian", small_dataset.test_X, small_dataset.train_X
        )
        expected = one_nn_predict(E, small_dataset.train_y)
        assert np.array_equal(ensemble.predict(small_dataset.test_X), expected)
