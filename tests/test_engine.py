"""Fault-injection tests for the checkpointed, fault-tolerant sweep engine.

Every scenario runs through the public :func:`repro.run_sweep` entry
point with the deterministic ``_inject_fault`` hook: retried flakes,
budget exhaustion (degrade vs raise), hung cells, and kill-and-resume —
in both executors wherever the behaviour must match.
"""

import json
import time
from collections import Counter

import numpy as np
import pytest

from repro.evaluation import (
    CellJournal,
    MeasureVariant,
    SweepConfig,
    run_sweep,
)
from repro.evaluation.engine import cell_key, content_key, dataset_fingerprint
from repro.exceptions import CellFailure, EvaluationError
from repro.observability import Recorder, get_bus, span_signature

EXECUTORS = [
    pytest.param({"executor": "serial"}, id="serial"),
    pytest.param({"executor": "process", "workers": 2}, id="process"),
]


# Fault hooks are module-level classes with plain-data state so they are
# deterministic per (cell, attempt) and survive the worker boundary.
class FlakyCell:
    """Raise for one cell on the first ``failures`` attempts, then pass."""

    def __init__(self, variant, dataset, failures):
        self.variant = variant
        self.dataset = dataset
        self.failures = failures

    def __call__(self, variant, dataset, attempt):
        if (
            variant == self.variant
            and dataset == self.dataset
            and attempt <= self.failures
        ):
            raise RuntimeError(f"injected flake (attempt {attempt})")


class AlwaysFail:
    """Raise on every attempt of one cell."""

    def __init__(self, variant, dataset):
        self.variant = variant
        self.dataset = dataset

    def __call__(self, variant, dataset, attempt):
        if variant == self.variant and dataset == self.dataset:
            raise ValueError("injected permanent failure")


class HangCell:
    """Simulate a hung evaluation of one cell."""

    def __init__(self, variant, dataset, seconds=10.0):
        self.variant = variant
        self.dataset = dataset
        self.seconds = seconds

    def __call__(self, variant, dataset, attempt):
        if variant == self.variant and dataset == self.dataset:
            time.sleep(self.seconds)


@pytest.fixture(scope="module")
def setup(tiny_archive):
    datasets = tiny_archive.subset(3)
    variants = [
        MeasureVariant("euclidean", label="ED"),
        MeasureVariant("lorentzian", label="Lorentzian"),
    ]
    return variants, datasets


class TestSweepConfig:
    def test_defaults(self):
        config = SweepConfig()
        assert config.executor == "serial"
        assert config.max_attempts == 1
        assert config.on_failure == "degrade"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"executor": "threads"},
            {"workers": 0},
            {"max_retries": -1},
            {"backoff": -0.1},
            {"cell_timeout": 0.0},
            {"on_failure": "explode"},
            {"resume": True},  # resume requires a checkpoint
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(EvaluationError):
            SweepConfig(**kwargs)

    def test_retry_delay_doubles(self):
        config = SweepConfig(max_retries=3, backoff=0.1)
        assert config.retry_delay(1) == pytest.approx(0.1)
        assert config.retry_delay(2) == pytest.approx(0.2)
        assert config.retry_delay(3) == pytest.approx(0.4)

    def test_config_and_loose_kwargs_conflict(self, setup):
        variants, datasets = setup
        with pytest.raises(EvaluationError, match="not both"):
            run_sweep(
                variants, datasets,
                config=SweepConfig(), max_retries=2,
            )


class TestRetries:
    @pytest.mark.parametrize("exec_kwargs", EXECUTORS)
    def test_flaky_cell_retried_to_success(self, setup, exec_kwargs):
        variants, datasets = setup
        flaky = FlakyCell("ED", datasets[1].name, failures=2)
        recorder = Recorder()
        with get_bus().sink(recorder):
            result = run_sweep(
                variants, datasets,
                max_retries=2, backoff=0.0,
                _inject_fault=flaky, **exec_kwargs,
            )
        assert result.ok
        assert np.isfinite(result.accuracies).all()
        assert recorder.counters().get("sweep.cell.retry") == 2
        attempts = recorder.spans("sweep.cell.attempt")
        # 6 cells, the flaky one took 3 attempts: 8 attempt spans total.
        assert len(attempts) == 8

    @pytest.mark.parametrize("exec_kwargs", EXECUTORS)
    def test_retried_result_matches_clean_run(self, setup, exec_kwargs):
        variants, datasets = setup
        clean = run_sweep(variants, datasets)
        flaky = FlakyCell("Lorentzian", datasets[0].name, failures=1)
        retried = run_sweep(
            variants, datasets,
            max_retries=1, backoff=0.0,
            _inject_fault=flaky, **exec_kwargs,
        )
        np.testing.assert_array_equal(clean.accuracies, retried.accuracies)


class TestDegradation:
    @pytest.mark.parametrize("exec_kwargs", EXECUTORS)
    def test_exhausted_cell_degrades_to_nan(self, setup, exec_kwargs):
        variants, datasets = setup
        broken = AlwaysFail("ED", datasets[2].name)
        recorder = Recorder()
        with get_bus().sink(recorder):
            result = run_sweep(
                variants, datasets,
                max_retries=1, backoff=0.0,
                _inject_fault=broken, **exec_kwargs,
            )
        assert not result.ok
        assert np.isnan(result.accuracies[2, 0])
        assert np.isnan(result.inference_seconds[2, 0])
        # every other cell finished
        mask = np.ones_like(result.accuracies, dtype=bool)
        mask[2, 0] = False
        assert np.isfinite(result.accuracies[mask]).all()
        [info] = result.failures
        assert (info.variant, info.dataset) == ("ED", datasets[2].name)
        assert info.attempts == 2
        assert info.kind == "error"
        assert info.error == "ValueError"
        assert result.failure_report() and "ED" in result.failure_report()[0]
        assert recorder.counters().get("sweep.cell.failed") == 1
        # means skip the NaN cell instead of poisoning the average
        assert np.isfinite(result.mean_accuracy()["ED"])

    @pytest.mark.parametrize("exec_kwargs", EXECUTORS)
    def test_on_failure_raise_aborts(self, setup, exec_kwargs):
        variants, datasets = setup
        broken = AlwaysFail("ED", datasets[0].name)
        with pytest.raises(CellFailure) as excinfo:
            run_sweep(
                variants, datasets,
                max_retries=1, backoff=0.0, on_failure="raise",
                _inject_fault=broken, **exec_kwargs,
            )
        assert excinfo.value.variant == "ED"
        assert excinfo.value.dataset == datasets[0].name
        assert excinfo.value.attempts == 2


class TestTimeouts:
    @pytest.mark.parametrize("exec_kwargs", EXECUTORS)
    def test_hung_cell_times_out(self, setup, exec_kwargs):
        variants, datasets = setup
        hang = HangCell("Lorentzian", datasets[1].name, seconds=10.0)
        recorder = Recorder()
        start = time.monotonic()
        with get_bus().sink(recorder):
            result = run_sweep(
                variants, datasets,
                cell_timeout=0.3, backoff=0.0,
                _inject_fault=hang, **exec_kwargs,
            )
        elapsed = time.monotonic() - start
        assert elapsed < 8.0  # the 10 s hang was cut short
        [info] = result.failures
        assert info.kind == "timeout"
        assert np.isnan(result.accuracies[1, 1])
        assert recorder.counters().get("sweep.cell.timeout") == 1


class TestCheckpointResume:
    def _interrupt_then_resume(self, variants, datasets, exec_kwargs, tmp_path):
        """Kill a checkpointed sweep partway, resume it, return both halves."""
        checkpoint = tmp_path / "ckpt"
        broken = AlwaysFail("Lorentzian", datasets[2].name)
        with pytest.raises(CellFailure):
            run_sweep(
                variants, datasets,
                checkpoint=checkpoint, on_failure="raise",
                _inject_fault=broken, **exec_kwargs,
            )
        with CellJournal(checkpoint, resume=True) as journal:
            done_before = len(journal.completed)
        assert 0 < done_before < len(variants) * len(datasets)

        recorder = Recorder()
        with get_bus().sink(recorder):
            result = run_sweep(
                variants, datasets,
                checkpoint=checkpoint, resume=True, **exec_kwargs,
            )
        return result, done_before, recorder

    @pytest.mark.parametrize("exec_kwargs", EXECUTORS)
    def test_kill_and_resume_bitwise_equal(
        self, setup, exec_kwargs, tmp_path
    ):
        variants, datasets = setup
        baseline = run_sweep(variants, datasets)
        result, done_before, recorder = self._interrupt_then_resume(
            variants, datasets, exec_kwargs, tmp_path
        )
        np.testing.assert_array_equal(baseline.accuracies, result.accuracies)
        assert result.ok
        # only the unfinished cells were recomputed: resumed cells emit a
        # counter instead of a sweep.cell span
        n_cells = len(variants) * len(datasets)
        assert recorder.counters()["sweep.cell.resumed"] == done_before
        assert len(recorder.spans("sweep.cell")) == n_cells - done_before

    def test_completed_checkpoint_resumes_without_recompute(
        self, setup, tmp_path
    ):
        variants, datasets = setup
        checkpoint = tmp_path / "ckpt"
        first = run_sweep(variants, datasets, checkpoint=checkpoint)
        recorder = Recorder()
        with get_bus().sink(recorder):
            second = run_sweep(
                variants, datasets, checkpoint=checkpoint, resume=True
            )
        np.testing.assert_array_equal(first.accuracies, second.accuracies)
        assert len(recorder.spans("sweep.cell")) == 0
        assert len(recorder.spans("sweep.cell.attempt")) == 0
        n_cells = len(variants) * len(datasets)
        assert recorder.counters()["sweep.cell.resumed"] == n_cells

    def test_fresh_run_refuses_existing_journal(self, setup, tmp_path):
        variants, datasets = setup
        checkpoint = tmp_path / "ckpt"
        run_sweep(variants, datasets, checkpoint=checkpoint)
        with pytest.raises(EvaluationError, match="resume=True"):
            run_sweep(variants, datasets, checkpoint=checkpoint)

    def test_journal_layout_on_disk(self, setup, tmp_path):
        variants, datasets = setup
        checkpoint = tmp_path / "ckpt"
        run_sweep(variants, datasets, checkpoint=checkpoint)
        lines = [
            json.loads(line)
            for line in (checkpoint / "journal.jsonl").read_text().splitlines()
        ]
        assert lines[0]["type"] == "meta"
        assert lines[0]["schema"].startswith("repro.sweep-journal/")
        cells = [r for r in lines if r["type"] == "cell"]
        n_cells = len(variants) * len(datasets)
        assert len(cells) == n_cells
        assert all(r["status"] == "done" for r in cells)
        assert len(list((checkpoint / "cells").glob("*.json"))) == n_cells

    def test_torn_journal_line_tolerated(self, setup, tmp_path):
        variants, datasets = setup
        checkpoint = tmp_path / "ckpt"
        run_sweep(variants, datasets, checkpoint=checkpoint)
        with (checkpoint / "journal.jsonl").open("a") as fh:
            fh.write('{"type": "cell", "status": "done", "ke')  # torn write
        recorder = Recorder()
        with get_bus().sink(recorder):
            result = run_sweep(
                variants, datasets, checkpoint=checkpoint, resume=True
            )
        assert result.ok
        assert recorder.counters()["journal.torn_lines"] == 1

    def test_failed_cells_recomputed_on_resume(self, setup, tmp_path):
        variants, datasets = setup
        checkpoint = tmp_path / "ckpt"
        broken = AlwaysFail("ED", datasets[0].name)
        degraded = run_sweep(
            variants, datasets,
            checkpoint=checkpoint, _inject_fault=broken,
        )
        assert not degraded.ok
        healed = run_sweep(
            variants, datasets, checkpoint=checkpoint, resume=True
        )
        assert healed.ok
        assert np.isfinite(healed.accuracies).all()

    def test_checkpoint_key_tracks_content(self, setup):
        variants, datasets = setup
        fp_a = dataset_fingerprint(datasets[0])
        fp_b = dataset_fingerprint(datasets[1])
        assert cell_key(variants[0], fp_a) != cell_key(variants[0], fp_b)
        assert cell_key(variants[0], fp_a) != cell_key(variants[1], fp_a)
        assert cell_key(variants[0], fp_a) == cell_key(variants[0], fp_a)
        assert content_key({"a": 1}) != content_key({"a": 2})


class TestTraceEquivalenceUnderFaults:
    def test_serial_and_process_spans_match_with_retries(self, setup):
        variants, datasets = setup
        bus = get_bus()
        flaky = FlakyCell("ED", datasets[0].name, failures=2)
        serial, process = Recorder(), Recorder()
        with bus.sink(serial):
            run_sweep(
                variants, datasets,
                max_retries=2, backoff=0.0, _inject_fault=flaky,
            )
        with bus.sink(process):
            run_sweep(
                variants, datasets,
                executor="process", workers=2,
                max_retries=2, backoff=0.0, _inject_fault=flaky,
            )
        serial_spans = Counter(span_signature(e) for e in serial.spans())
        process_spans = Counter(span_signature(e) for e in process.spans())
        assert serial_spans == process_spans
        assert serial.counters() == process.counters()


class TestContentKeyCanonicalization:
    """Regression: hashing must see values, not memory layout or dtype.

    Serving-artifact fingerprints are built on `content_key`, so a
    reference set materialized as a transposed view, a Fortran-ordered
    copy or a narrower float dtype must key identically to its
    C-contiguous float64 twin.
    """

    def test_layout_invariant(self):
        rng = np.random.default_rng(7)
        A = rng.standard_normal((6, 9))
        base = content_key({}, [A])
        assert base == content_key({}, [A.T.T])
        assert base == content_key({}, [np.asfortranarray(A)])
        assert base == content_key({}, [A[::-1][::-1]])
        strided = A[:, ::2]
        assert content_key({}, [strided]) == content_key(
            {}, [np.ascontiguousarray(strided)]
        )

    def test_dtype_invariant_for_exact_values(self):
        ints = np.arange(24).reshape(4, 6)  # exactly representable
        base = content_key({}, [ints])
        assert base == content_key({}, [ints.astype(np.float32)])
        assert base == content_key({}, [ints.astype(np.float64)])

    def test_shape_and_values_still_distinguish(self):
        A = np.arange(12.0).reshape(3, 4)
        assert content_key({}, [A]) != content_key({}, [A.reshape(4, 3)])
        B = A.copy()
        B[0, 0] += 1e-9
        assert content_key({}, [A]) != content_key({}, [B])

    def test_dataset_fingerprint_survives_views(self, setup):
        _, datasets = setup
        ds = datasets[0]
        viewed = type(ds)(
            name=ds.name,
            train_X=ds.train_X.T.copy().T,
            train_y=ds.train_y,
            test_X=np.asfortranarray(ds.test_X),
            test_y=ds.test_y,
        )
        assert dataset_fingerprint(viewed) == dataset_fingerprint(ds)
