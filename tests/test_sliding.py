"""Unit tests for the sliding measures (paper Section 6)."""

import numpy as np
import pytest

from repro.distances import get_measure, list_measures
from repro.distances.sliding import (
    best_shift,
    cross_correlation,
    cross_correlation_naive,
    ncc,
    ncc_b,
    ncc_c,
    ncc_u,
    sbd,
)


class TestCrossCorrelationSequence:
    def test_length_is_2m_minus_1(self, sine_pair):
        x, y = sine_pair
        assert cross_correlation(x, y).shape == (2 * x.shape[0] - 1,)

    def test_fft_matches_naive(self, random_pairs):
        """Eq. (10)'s FFT path must equal the O(m^2) definition."""
        for x, y in random_pairs:
            assert np.allclose(
                cross_correlation(x, y), cross_correlation_naive(x, y), atol=1e-8
            )

    def test_zero_shift_entry_is_dot_product(self, sine_pair):
        x, y = sine_pair
        cc = cross_correlation(x, y)
        assert cc[x.shape[0] - 1] == pytest.approx(float(np.dot(x, y)))

    def test_single_point_series(self):
        assert cross_correlation(np.array([2.0]), np.array([3.0])).tolist() == [6.0]

    def test_detects_known_shift(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=50)
        y = np.roll(x, 7)
        # x equals y shifted by -7: best alignment at shift -7 of y... the
        # convention is pinned by this test: best_shift(x, np.roll(x, s)) == -s
        # for circular shifts within +-(m-1).
        assert best_shift(x, y) in (-7, 50 - 7)


class TestNCCVariants:
    def test_four_sliding_measures_registered(self):
        assert len(list_measures("sliding")) == 4

    def test_sbd_alias(self):
        assert get_measure("sbd").name == "nccc"
        assert sbd is ncc_c

    def test_nccc_zero_for_identical(self, sine_pair):
        x, _ = sine_pair
        assert ncc_c(x, x) == pytest.approx(0.0, abs=1e-9)

    def test_nccc_shift_invariant(self):
        # Zero-padded cross-correlation is invariant to shifts of a
        # compact-support pattern (a rolled tail of nonzero values would
        # be lost to the padding — see Section 6's shifting discussion).
        rng = np.random.default_rng(4)
        x = np.zeros(64)
        x[20:44] = rng.normal(size=24)
        shifted = np.roll(x, 9)
        assert ncc_c(x, shifted) == pytest.approx(0.0, abs=1e-9)

    def test_nccc_bounded(self, random_pairs):
        for x, y in random_pairs:
            assert 0.0 - 1e-9 <= ncc_c(x, y) <= 2.0 + 1e-9

    def test_nccc_scale_invariant(self, sine_pair):
        x, y = sine_pair
        assert ncc_c(x, 10.0 * y) == pytest.approx(ncc_c(x, y), abs=1e-9)

    def test_nccc_of_zero_series_is_one(self):
        assert ncc_c(np.zeros(8), np.ones(8)) == 1.0

    def test_ncc_b_is_ncc_over_m(self, sine_pair):
        x, y = sine_pair
        assert ncc_b(x, y) == pytest.approx(ncc(x, y) / x.shape[0])

    def test_ncc_u_overweights_extreme_shifts(self):
        # A pair whose only correlation is at an extreme shift: the
        # unbiased divisor (overlap length 1) amplifies it.
        x = np.zeros(8)
        x[0] = 1.0
        y = np.zeros(8)
        y[7] = 1.0
        assert ncc_u(x, y) == pytest.approx(-1.0)
        assert ncc_b(x, y) == pytest.approx(-1.0 / 8.0)

    def test_symmetry_of_nccc(self, random_pairs):
        for x, y in random_pairs:
            assert ncc_c(x, y) == pytest.approx(ncc_c(y, x), abs=1e-9)


class TestSlidingMatrices:
    @pytest.mark.parametrize("name", ["ncc", "nccb", "nccu", "nccc"])
    def test_matrix_matches_scalar(self, name, rng):
        measure = get_measure(name)
        X = rng.normal(size=(5, 20))
        Y = rng.normal(size=(4, 20))
        matrix = measure.pairwise(X, Y)
        for i in range(5):
            for j in range(4):
                assert matrix[i, j] == pytest.approx(
                    measure(X[i], Y[j]), rel=1e-7, abs=1e-9
                )

    def test_self_matrix_diagonal_zero_for_sbd(self, rng):
        X = rng.normal(size=(6, 16))
        W = get_measure("nccc").pairwise(X)
        assert np.allclose(np.diag(W), 0.0, atol=1e-9)


class TestSlidingBeatsLockstepOnShiftedData(object):
    def test_sbd_separates_shifted_classes_better_than_ed(self, shifted_dataset):
        """The core of misconception M3: on shift-dominated data the
        sliding measure must clearly beat the lock-step baseline."""
        from repro.classification import dissimilarity_matrix, one_nn_accuracy

        ds = shifted_dataset
        acc = {}
        for name in ("euclidean", "nccc"):
            E = dissimilarity_matrix(name, ds.test_X, ds.train_X)
            acc[name] = one_nn_accuracy(E, ds.test_y, ds.train_y)
        assert acc["nccc"] >= acc["euclidean"]
        assert acc["nccc"] >= 0.8
