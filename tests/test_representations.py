"""Tests for the PAA / DFT / SAX representation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distances.lockstep import euclidean
from repro.exceptions import ValidationError
from repro.normalization import zscore
from repro.representations import (
    dft_distance,
    dft_inverse,
    dft_transform,
    gaussian_breakpoints,
    mindist,
    paa_distance,
    paa_inverse,
    paa_transform,
    reconstruction_error,
    sax_distance,
    sax_to_string,
    sax_transform,
)

series32 = arrays(
    np.float64,
    32,
    elements=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
)


class TestPAA:
    def test_divisible_case_is_frame_means(self):
        x = np.arange(8, dtype=float)
        assert paa_transform(x, 4).tolist() == [0.5, 2.5, 4.5, 6.5]

    def test_full_resolution_is_identity(self):
        x = np.arange(6, dtype=float)
        assert np.allclose(paa_transform(x, 6), x)

    def test_single_segment_is_mean(self, sine_pair):
        x, _ = sine_pair
        assert paa_transform(x, 1)[0] == pytest.approx(x.mean())

    def test_fractional_frames_preserve_mean(self):
        x = np.arange(10, dtype=float)
        frames = paa_transform(x, 3)
        assert frames.mean() == pytest.approx(x.mean())

    def test_inverse_shape_and_levels(self):
        frames = np.array([1.0, 5.0])
        recon = paa_inverse(frames, 6)
        assert recon.tolist() == [1.0, 1.0, 1.0, 5.0, 5.0, 5.0]

    def test_invalid_segments_rejected(self):
        with pytest.raises(ValidationError):
            paa_transform(np.ones(4), 0)
        with pytest.raises(ValidationError):
            paa_transform(np.ones(4), 9)

    @given(series32, series32, st.sampled_from([2, 4, 8, 16, 32]))
    @settings(max_examples=40, deadline=None)
    def test_lower_bounds_euclidean(self, x, y, segments):
        assert paa_distance(x, y, segments) <= euclidean(x, y) + 1e-7

    def test_bound_tightens_with_resolution(self, sine_pair):
        x, y = sine_pair
        d2 = paa_distance(x, y, 2)
        d16 = paa_distance(x, y, 16)
        full = paa_distance(x, y, x.shape[0])
        assert d2 <= d16 + 1e-9 <= full + 1e-9
        assert full == pytest.approx(euclidean(x, y))


class TestDFT:
    def test_roundtrip_with_all_coefficients(self, sine_pair):
        x, _ = sine_pair
        coeffs = dft_transform(x, x.shape[0] // 2 + 1)
        assert np.allclose(dft_inverse(coeffs, x.shape[0]), x, atol=1e-9)

    def test_parseval_with_all_coefficients(self, sine_pair):
        x, y = sine_pair
        full = x.shape[0] // 2 + 1
        assert dft_distance(x, y, full) == pytest.approx(
            euclidean(x, y), rel=1e-9
        )

    @given(series32, series32, st.sampled_from([1, 2, 4, 8, 17]))
    @settings(max_examples=40, deadline=None)
    def test_lower_bounds_euclidean(self, x, y, k):
        assert dft_distance(x, y, k) <= euclidean(x, y) + 1e-7

    def test_bound_monotone_in_coefficients(self, sine_pair):
        x, y = sine_pair
        d1 = dft_distance(x, y, 1)
        d4 = dft_distance(x, y, 4)
        d8 = dft_distance(x, y, 8)
        assert d1 <= d4 + 1e-9 <= d8 + 2e-9

    def test_reconstruction_error_decreases(self, sine_pair):
        x, _ = sine_pair
        errs = [reconstruction_error(x, k) for k in (1, 4, 16)]
        assert errs[0] >= errs[1] >= errs[2]

    def test_smooth_signal_compresses_well(self):
        x = np.sin(np.linspace(0, 4 * np.pi, 64))
        assert reconstruction_error(x, 4) < 0.05

    def test_invalid_coefficient_count_rejected(self, sine_pair):
        x, _ = sine_pair
        with pytest.raises(ValidationError):
            dft_transform(x, 0)
        with pytest.raises(ValidationError):
            dft_transform(x, x.shape[0])


class TestSAX:
    def test_breakpoints_equiprobable(self):
        bps = gaussian_breakpoints(4)
        assert bps.shape == (3,)
        assert bps[1] == pytest.approx(0.0, abs=1e-12)
        assert bps[0] == pytest.approx(-bps[2])

    def test_word_symbols_in_alphabet(self, sine_pair):
        x, _ = sine_pair
        word = sax_transform(x, 8, alphabet_size=5)
        assert word.shape == (8,)
        assert word.min() >= 0 and word.max() <= 4

    def test_string_rendering(self):
        assert sax_to_string(np.array([0, 1, 2])) == "abc"

    def test_identical_series_mindist_zero(self, sine_pair):
        x, _ = sine_pair
        assert sax_distance(x, x, 8) == 0.0

    def test_adjacent_symbols_cost_nothing(self):
        assert mindist([0, 1], [1, 2], original_length=16) == 0.0

    def test_distant_symbols_cost_breakpoint_gap(self):
        bps = gaussian_breakpoints(8)
        d = mindist([0], [7], original_length=4, alphabet_size=8)
        assert d == pytest.approx(2.0 * (bps[6] - bps[0]))

    @given(series32, series32)
    @settings(max_examples=40, deadline=None)
    def test_mindist_lower_bounds_znormalized_ed(self, x, y):
        zx, zy = zscore(x), zscore(y)
        true = euclidean(zx, zy)
        assert sax_distance(x, y, 8, alphabet_size=8) <= true + 1e-6

    def test_word_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            mindist([0, 1], [0, 1, 2], original_length=8)
