"""Tests for the generated measure catalog."""

from pathlib import Path

from repro.reporting.catalog import catalog_markdown

DOCS_PATH = Path(__file__).parent.parent / "docs" / "measures.md"


class TestCatalogMarkdown:
    def test_all_categories_present(self):
        md = catalog_markdown()
        for heading in (
            "Normalization methods",
            "Lock-step measures",
            "Sliding measures",
            "Elastic measures",
            "Kernel measures",
            "Embedding measures",
            "Extensions",
        ):
            assert heading in md

    def test_counts(self):
        md = catalog_markdown()
        # One table row per lock-step measure.
        lockstep_section = md.split("## Lock-step")[1].split("## Sliding")[0]
        rows = [l for l in lockstep_section.splitlines() if l.startswith("| `")]
        assert len(rows) == 52

    def test_parameter_grids_mentioned(self):
        md = catalog_markdown()
        assert "`delta` (default 10" in md  # DTW
        assert "`c` (default 0.5" in md  # MSM

    def test_committed_docs_in_sync(self):
        """docs/measures.md must match the registry (regenerate with
        ``python -m repro catalog > docs/measures.md``)."""
        assert DOCS_PATH.exists(), "docs/measures.md missing"
        committed = DOCS_PATH.read_text().strip()
        assert committed == catalog_markdown().strip()

    def test_cli_catalog_prints(self, capsys):
        from repro.cli import main

        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "# Measure catalog" in out
