"""Tests for the streaming subsystem (repro.streaming + /stream routes).

The load-bearing contract is **replay parity**: replaying any prefix of
any series through the incremental path must reproduce the batch
answer — window statistics bitwise, matrix profile within 1e-9 —
regardless of how the points were chunked. Everything else (detectors,
server endpoints, CLI) builds on that invariant.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import default_archive
from repro.exceptions import StreamingError, ValidationError
from repro.search import matrix_profile, rolling_mean_std
from repro.serving import (
    ModelArtifact,
    QueryEngine,
    ReproServer,
    StreamRegistry,
)
from repro.streaming import (
    Alert,
    DiscordDetector,
    DriftDetector,
    Hysteresis,
    LabelMonitor,
    MotifDetector,
    NO_NEIGHBOR,
    StreamClient,
    StreamingMatrixProfile,
    StreamMonitor,
    StreamState,
    build_monitor,
    inject_discord,
    replay_local,
    replay_remote,
    verify_against_batch,
)

PARITY_ATOL = 1e-9


def profile_diff(a, b):
    """Max elementwise gap, treating matching ``inf`` entries as equal."""
    a, b = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    with np.errstate(invalid="ignore"):  # inf - inf, zeroed below
        diff = np.abs(a - b)
    diff[np.isinf(a) & np.isinf(b)] = 0.0
    return float(np.max(diff)) if diff.size else 0.0


def chunked(series, sizes):
    """Split *series* into chunks cycling through *sizes*."""
    out, start, i = [], 0, 0
    while start < len(series):
        size = sizes[i % len(sizes)]
        out.append(series[start : start + size])
        start += size
        i += 1
    return out


@pytest.fixture(scope="module")
def wave(rng):
    t = np.linspace(0, 40, 900)
    return np.sin(t) + 0.05 * rng.normal(size=900)


# ---------------------------------------------------------------------------
# StreamState
# ---------------------------------------------------------------------------
class TestStreamState:
    def test_window_stats_bitwise_equal_batch(self, rng):
        series = rng.normal(2.0, 3.0, size=257)
        state = StreamState(window=16)
        for block in chunked(series, [1, 7, 64, 3]):
            state.append(block)
        means, stds = rolling_mean_std(series, 16)
        # Bitwise, not approx: both paths accumulate the identical
        # cumulative sums and share the same clamped variance guard.
        assert np.array_equal(state.window_means, means)
        assert np.array_equal(state.window_stds, stds)

    def test_large_offset_constant_series_stats_finite(self):
        # The catastrophic-cancellation regression case: huge offset,
        # tiny spread. Both paths must clamp, never NaN.
        series = 1e8 + 1e-6 * np.sin(np.linspace(0, 5, 120))
        state = StreamState(window=10)
        state.append(series)
        assert np.isfinite(state.window_stds).all()
        assert np.array_equal(
            state.window_stds, rolling_mean_std(series, 10)[1]
        )

    def test_welford_matches_numpy(self, rng):
        series = rng.normal(-5.0, 0.5, size=400)
        state = StreamState(window=8)
        state.append(series)
        assert state.mean == pytest.approx(series.mean(), rel=1e-12)
        assert state.std == pytest.approx(series.std(), rel=1e-10)

    def test_capacity_drops_counted_indices_stable(self):
        state = StreamState(window=4, capacity=10)
        assert state.append(np.arange(8.0)) == 8
        assert state.append(np.arange(8.0)) == 2  # only 2 slots left
        assert state.n == 10
        assert state.dropped == 6
        assert state.append([1.0]) == 0
        assert state.dropped == 7
        # The buffered prefix is untouched by the drops.
        assert np.array_equal(state.values[:8], np.arange(8.0))

    def test_validation(self):
        with pytest.raises(StreamingError):
            StreamState(window=1)
        with pytest.raises(StreamingError):
            StreamState(window=8, capacity=10)
        state = StreamState(window=4)
        with pytest.raises(ValidationError):
            state.append([1.0, np.nan])
        with pytest.raises(StreamingError):
            state.latest_window(1)  # empty stream


# ---------------------------------------------------------------------------
# StreamingMatrixProfile: replay parity
# ---------------------------------------------------------------------------
class TestStreamingProfileParity:
    def test_prefix_parity_point_by_point(self, wave):
        series = wave[:300]
        window = 25
        smp = StreamingMatrixProfile(window)
        for i, v in enumerate(series):
            smp.append([v])
            n = i + 1
            if n >= 2 * window and n % 37 == 0:
                batch = matrix_profile(series[:n], window=window)
                assert profile_diff(batch.profile, smp.profile) <= PARITY_ATOL

    def test_chunked_replay_parity_and_chunk_invariance(self, wave):
        window = 40
        profiles = []
        for sizes in ([1], [64], [1, 7, 128, 3]):
            smp = StreamingMatrixProfile(window)
            for block in chunked(wave, sizes):
                smp.append(block)
            profiles.append(smp.profile)
        batch = matrix_profile(wave, window=window)
        for streamed in profiles:
            assert profile_diff(batch.profile, streamed) <= PARITY_ATOL
        # Chunkings agree with each other within the same gate (each
        # chunk size folds rows against a different-length prefix, so
        # bitwise equality across chunkings is not expected)...
        assert profile_diff(profiles[0], profiles[1]) <= PARITY_ATOL
        assert profile_diff(profiles[0], profiles[2]) <= PARITY_ATOL
        # ...but replaying the *same* chunking twice is bitwise identical.
        rerun = StreamingMatrixProfile(window)
        for block in chunked(wave, [1, 7, 128, 3]):
            rerun.append(block)
        assert np.array_equal(profiles[2], rerun.profile)

    def test_neighbor_indices_agree_with_batch_where_unambiguous(self, wave):
        window = 40
        smp = StreamingMatrixProfile(window)
        smp.append(wave)
        batch = matrix_profile(wave, window=window)
        disagree = smp.indices != batch.indices
        if disagree.any():
            # Indices may differ only between (near-)equidistant
            # neighbors — distances there agree within tolerance.
            assert profile_diff(
                batch.profile[disagree], smp.profile[disagree]
            ) <= PARITY_ATOL

    def test_window_sized_stream_all_inf(self):
        smp = StreamingMatrixProfile(6)
        smp.append(np.sin(np.arange(6.0)))
        assert smp.n_subsequences == 1
        assert np.isinf(smp.profile).all()
        assert (smp.indices == NO_NEIGHBOR).all()

    def test_exclusion_zone_edge_at_stream_start(self):
        # 2 subsequences, |i - j| = 1 <= exclusion: nothing comparable,
        # the batch path would reject this length outright.
        window = 8
        smp = StreamingMatrixProfile(window)
        smp.append(np.sin(np.arange(window + 1.0)))
        assert smp.n_subsequences == 2
        assert np.isinf(smp.profile).all()
        j, value = smp.latest()
        assert j == 1 and np.isinf(value)

    def test_shortest_batch_accepted_stream_parity(self):
        # n == 2 * window, the batch validator's floor.
        rng = np.random.default_rng(5)
        window = 10
        series = rng.normal(size=2 * window)
        smp = StreamingMatrixProfile(window)
        for v in series:
            smp.append([v])
        batch = matrix_profile(series, window=window)
        assert profile_diff(batch.profile, smp.profile) <= PARITY_ATOL

    def test_as_matrix_profile_discord_helpers(self, wave):
        series, at = inject_discord(wave, scale=8.0)
        smp = StreamingMatrixProfile(40)
        smp.append(series)
        snapshot = smp.as_matrix_profile()
        discord, _ = snapshot.discords(k=1)[0]
        assert at - 40 <= discord <= at + len(series) // 20

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_hypothesis_replay_parity(self, data):
        window = data.draw(st.integers(2, 8), label="window")
        n = data.draw(st.integers(2 * window, 80), label="n")
        # Integer lattice, bounded magnitude: every window's std is
        # either exactly 0 (the FFT-free flat-window convention, shared
        # by both paths) or >= ~1/window, so z-normalization cannot
        # amplify FFT noise unboundedly. Free-form floats can plant a
        # 1e-5 spread next to a +/-100 value, where BOTH paths' MASS
        # answers drift past 1e-9 of the true distance (a conditioning
        # property of the algorithm, not of the incremental replay this
        # test gates) — while exact ties, duplicates, and flat windows
        # stay heavily exercised.
        series = np.array(
            data.draw(
                st.lists(
                    st.integers(-100, 100), min_size=n, max_size=n
                ),
                label="series",
            ),
            dtype=float,
        )
        chunk = data.draw(st.integers(1, n), label="chunk")
        smp = StreamingMatrixProfile(window)
        for start in range(0, n, chunk):
            smp.append(series[start : start + chunk])
        batch = matrix_profile(series, window=window)
        assert smp.profile.shape == batch.profile.shape
        # Hypothesis happily constructs EXACT z-normalized duplicates
        # (d = 0), where sqrt(2q(1 - corr)) has infinite slope: one ulp
        # of correlation difference between the two FFT directions
        # amplifies to ~1e-8 in distance. Squared-distance space has no
        # such cliff — parity there is the invariant that holds for
        # arbitrary inputs; distance-space 1e-9 holds away from d ~ 0
        # (and for real series end to end, as the non-adversarial tests
        # and the CLI/CI --verify gate check directly).
        assert (
            profile_diff(batch.profile**2, smp.profile**2) <= PARITY_ATOL
        )
        away = np.isfinite(batch.profile) & (batch.profile > 1e-3)
        assert (
            profile_diff(batch.profile[away], smp.profile[away])
            <= PARITY_ATOL
        )


# ---------------------------------------------------------------------------
# Detectors
# ---------------------------------------------------------------------------
class TestDetectors:
    def test_hysteresis_single_fire_until_release(self):
        trig = Hysteresis(trigger=5.0, release=3.0)
        fired = [trig.update(v) for v in [1, 6, 7, 6, 2, 8, 4, 9]]
        # Fires at the first crossing, re-arms only below 3, fires again.
        assert fired == [False, True, False, False, False, True, False, False]

    def test_hysteresis_low_side(self):
        trig = Hysteresis(trigger=1.0, release=2.0, direction=-1)
        fired = [trig.update(v) for v in [5, 0.5, 0.4, 3.0, 0.9]]
        assert fired == [False, True, False, False, True]

    def test_hysteresis_validation(self):
        with pytest.raises(StreamingError):
            Hysteresis(1.0, 2.0, direction=1)
        with pytest.raises(StreamingError):
            Hysteresis(2.0, 1.0, direction=-1)
        with pytest.raises(StreamingError):
            Hysteresis(1.0, 1.0, direction=0)

    def test_discord_fires_near_injected_anomaly(self, wave):
        series, at = inject_discord(wave, scale=8.0)
        monitor = build_monitor(window=40, discord_threshold=0.8)
        alerts = []
        replay_local(series, monitor, chunk=32, on_alert=alerts.append)
        discords = [a for a in alerts if a.kind == "discord"]
        assert discords, "injected discord did not fire"
        burst = range(at - 40, at + len(series) // 20 + 1)
        assert any(a.at in burst for a in discords)

    def test_alerts_replay_deterministic(self, wave):
        series, _ = inject_discord(wave, scale=8.0)

        def run(chunk):
            monitor = build_monitor(
                window=40, discord_threshold=0.8, drift_z=5.0
            )
            fired = []
            replay_local(series, monitor, chunk=chunk, on_alert=fired.append)
            return [(a.kind, a.at, a.value) for a in fired]

        # Same points, same chunking -> bit-identical alert sequence.
        assert run(17) == run(17)
        assert run(256) == run(256)

    def test_motif_detector_reports_neighbor(self):
        pattern = np.sin(np.linspace(0, 2 * np.pi, 32))
        rng = np.random.default_rng(9)
        series = np.concatenate(
            [pattern, rng.normal(0, 0.4, 200), pattern]
        )
        monitor = StreamMonitor(
            16, detectors=[MotifDetector(threshold=0.5)]
        )
        alerts = monitor.append(series)
        motifs = [a for a in alerts if a.kind == "motif"]
        assert motifs
        assert any(a.detail["neighbor"] < 32 for a in motifs)

    def test_drift_detector_fires_after_level_shift(self):
        rng = np.random.default_rng(11)
        calm = rng.normal(0, 1, 400)
        shifted = rng.normal(25, 1, 200)
        monitor = StreamMonitor(
            20,
            detectors=[DriftDetector(z_threshold=5.0, baseline_points=300)],
        )
        assert not monitor.append(calm)
        alerts = monitor.append(shifted)
        drift = [a for a in alerts if a.kind == "drift"]
        assert len(drift) == 1  # hysteresis: one alert for one excursion
        detector = monitor.detectors[0]
        assert detector.drifted_points > 0
        # The baseline froze at the first update past baseline_points —
        # here after the single 400-point append, so over all of calm.
        assert detector.baseline_mean == pytest.approx(calm.mean())

    def test_label_monitor_alerts_on_shift(self):
        dataset = default_archive(n_datasets=4, size_scale=0.4, seed=3).subset(
            1
        )[0]
        artifact = ModelArtifact.fit_dataset(
            dataset, measure="euclidean", normalization="zscore"
        )
        engine = QueryEngine(artifact)
        labels = artifact.train_y
        a = dataset.train_X[labels == labels.min()][0]
        b = dataset.train_X[labels == labels.max()][0]
        # Three repeats of class A then three of class B.
        stream = np.concatenate([a, a, a, b, b, b])
        monitor = StreamMonitor(
            8, detectors=[LabelMonitor(engine)]
        )
        alerts = monitor.append(stream)
        shifts = [a for a in alerts if a.kind == "label_shift"]
        assert len(shifts) == 1
        assert shifts[0].value == float(labels.max())
        assert shifts[0].detail["previous"] == float(labels.min())
        assert monitor.detectors[0].checks == 6

    def test_monitor_counters_and_alert_cap(self, wave):
        monitor = build_monitor(window=40, discord_threshold=0.8)
        replay_local(wave, monitor)
        counters = monitor.counters()
        assert counters["n"] == wave.shape[0]
        assert counters["subsequences"] == wave.shape[0] - 40 + 1
        assert counters["alerts"] == sum(counters["alerts_by_kind"].values())

    def test_verify_against_batch(self, wave):
        monitor = build_monitor(window=30)
        short = StreamMonitor(30)
        short.append(wave[:40])
        assert verify_against_batch(short)["checked"] is False
        monitor.append(wave)
        report = verify_against_batch(monitor)
        assert report["checked"] and report["ok"]
        assert report["max_abs_diff"] <= PARITY_ATOL


# ---------------------------------------------------------------------------
# Server /stream endpoints
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def stream_dataset():
    return default_archive(n_datasets=4, size_scale=0.4, seed=3).subset(1)[0]


@pytest.fixture(scope="module")
def stream_artifact(stream_dataset):
    return ModelArtifact.fit_dataset(
        stream_dataset, measure="euclidean", normalization="zscore"
    )


@pytest.fixture()
def stream_server(stream_artifact):
    server = ReproServer(
        QueryEngine(stream_artifact), port=0, max_streams=2
    )
    server.start_background()
    yield server
    if server._thread is not None:
        server.shutdown()


def http(url, payload=None, method=None):
    """Request helper returning ``(status, decoded_json)``, never raising."""
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(req, timeout=10.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestStreamEndpoints:
    def test_append_profile_alerts_delete_lifecycle(self, stream_server, wave):
        url = stream_server.url
        series, at = inject_discord(wave, scale=8.0)
        status, body = http(
            url + "/stream/s1",
            {
                "values": series[:500].tolist(),
                "window": 40,
                "discord_threshold": 0.8,
            },
        )
        assert status == 200 and body["created"] is True
        assert body["accepted"] == 500 and body["dropped"] == 0
        status, body = http(
            url + "/stream/s1", {"values": series[500:].tolist()}
        )
        assert status == 200 and body["created"] is False
        assert body["n"] == series.shape[0]

        status, prof = http(url + "/stream/s1/profile")
        assert status == 200
        streamed = np.array(
            [np.inf if v is None else v for v in prof["profile"]]
        )
        batch = matrix_profile(series, window=40)
        assert profile_diff(batch.profile, streamed) <= PARITY_ATOL

        status, alerts = http(url + "/stream/s1/alerts")
        assert status == 200
        assert any(a["kind"] == "discord" for a in alerts["alerts"])
        assert alerts["counters"]["n"] == series.shape[0]

        status, listing = http(url + "/stream")
        assert status == 200 and listing["active"] == 1
        assert listing["streams"][0]["stream"] == "s1"

        status, body = http(url + "/stream/s1", method="DELETE")
        assert status == 200 and body["deleted"] is True
        status, _ = http(url + "/stream/s1/profile")
        assert status == 404

    def test_window_conflict_409(self, stream_server):
        url = stream_server.url
        status, _ = http(
            url + "/stream/w", {"values": [1.0, 2.0], "window": 16}
        )
        assert status == 200
        status, body = http(
            url + "/stream/w", {"values": [3.0], "window": 32}
        )
        assert status == 409 and "already exists" in body["error"]
        # Same window (or none) is accepted.
        status, _ = http(url + "/stream/w", {"values": [3.0], "window": 16})
        assert status == 200

    def test_registry_limit_409_and_counters(self, stream_server):
        url = stream_server.url
        for name in ("a", "b"):
            status, _ = http(url + f"/stream/{name}", {"values": [1.0]})
            assert status == 200
        status, body = http(url + "/stream/c", {"values": [1.0]})
        assert status == 409 and "limit" in body["error"]
        status, health = http(url + "/healthz")
        assert health["streams"]["active"] == 2
        assert health["streams"]["rejected"] == 1

    def test_bad_requests(self, stream_server):
        url = stream_server.url
        for name, payload in [
            ("bad1", {"points": [1.0]}),  # missing 'values'
            ("bad2", {"values": ["x"]}),  # non-numeric
            ("bad3", {"values": [np.nan]}),  # non-finite (json allows NaN)
            ("bad4", {"values": [1.0], "window": 1}),  # bad window
        ]:
            status, body = http(url + f"/stream/{name}", payload)
            assert status == 400, body
        status, _ = http(url + "/stream/no%20good", {"values": [1.0]})
        assert status == 400  # invalid id
        status, _ = http(url + "/stream/none/profile")
        assert status == 404
        status, _ = http(url + "/stream/none", method="DELETE")
        assert status == 404

    def test_metrics_carry_stream_counters_and_gauges(self, stream_server):
        url = stream_server.url
        status, _ = http(
            url + "/stream/m", {"values": list(np.sin(np.arange(200.0)))}
        )
        assert status == 200
        status, metrics = http(url + "/metrics")
        # Bus counters are process-global (other tests feed streams too):
        # assert presence and a sane floor, not exact totals.
        assert metrics["counters"]["serve.stream.points"] >= 200
        assert metrics["counters"]["serve.stream.create"] >= 1
        assert metrics["streams"]["active"] == 1
        assert metrics["streams"]["points"] == 200
        req = urllib.request.Request(
            url + "/metrics?format=prometheus"
        )
        with urllib.request.urlopen(req, timeout=10.0) as resp:
            text = resp.read().decode()
        assert "repro_serve_stream_points_total" in text
        assert "repro_serve_streams_active 1.0" in text
        assert "repro_serve_streams_points 200.0" in text
        assert "repro_serve_stream_max_lag_seconds" in text

    def test_remote_replay_client_parity(self, stream_server, wave):
        series, _ = inject_discord(wave[:600], scale=8.0)
        client = StreamClient(
            stream_server.url,
            "remote",
            config={"window": 30, "discord_threshold": 0.8},
        )
        seen = []
        summary = replay_remote(
            series, client, chunk=100, on_alert=seen.append
        )
        assert all(isinstance(a, Alert) for a in seen)
        assert summary["counters"]["n"] == series.shape[0]
        payload = client.profile()
        streamed = np.array(
            [np.inf if v is None else v for v in payload["profile"]]
        )
        batch = matrix_profile(series, window=30)
        assert profile_diff(batch.profile, streamed) <= PARITY_ATOL
        client.delete()

    def test_stream_id_validation_registry(self):
        registry = StreamRegistry(max_streams=1)
        with pytest.raises(StreamingError):
            registry.get_or_create("../escape")
        with pytest.raises(StreamingError):
            StreamRegistry(max_streams=0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestStreamCli:
    def test_replay_local_verify(self, capsys):
        from repro.cli import main

        code = main(
            [
                "stream",
                "replay",
                "--points",
                "700",
                "--window",
                "40",
                "--inject-discord",
                "--verify",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verify:" in out and "ok" in out
        assert "ALERT discord" in out

    def test_replay_remote_verify(self, stream_server, capsys):
        from repro.cli import main

        code = main(
            [
                "stream",
                "replay",
                "--url",
                stream_server.url,
                "--stream-id",
                "cli",
                "--points",
                "600",
                "--window",
                "30",
                "--inject-discord",
                "--verify",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verify:" in out and "ok" in out

    def test_replay_series_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "series.npy"
        np.save(path, np.sin(np.linspace(0, 30, 400)))
        code = main(
            [
                "stream",
                "replay",
                "--series",
                str(path),
                "--window",
                "25",
                "--verify",
            ]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_replay_too_short_rejected(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "short.npy"
        np.save(path, np.arange(10.0))
        code = main(
            ["stream", "replay", "--series", str(path), "--window", "40"]
        )
        assert code == 2
        assert "shorter" in capsys.readouterr().err
