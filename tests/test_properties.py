"""Property-based tests (hypothesis) on core invariants.

These pin the mathematical contracts the evaluation relies on: identity,
symmetry, invariances per measure category, lower-bound relations, and
FFT/naive agreement — over randomized inputs rather than fixtures.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distances.elastic import dtw, erp, lb_keogh, msm, twe
from repro.distances.lockstep import euclidean, lorentzian, manhattan
from repro.distances.sliding import (
    cross_correlation,
    cross_correlation_naive,
    ncc_c,
)
from repro.normalization import minmax, unit_length, zscore

series = arrays(
    np.float64,
    st.shared(st.integers(min_value=4, max_value=32), key="len"),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)

series_pair = st.tuples(series, series)

SETTINGS = dict(max_examples=40, deadline=None)


class TestLockstepProperties:
    @given(series_pair)
    @settings(**SETTINGS)
    def test_identity_zero(self, pair):
        x, _ = pair
        assert euclidean(x, x) == 0.0
        assert manhattan(x, x) == 0.0
        assert lorentzian(x, x) == 0.0

    @given(series_pair)
    @settings(**SETTINGS)
    def test_symmetry(self, pair):
        x, y = pair
        assert euclidean(x, y) == euclidean(y, x)
        assert abs(lorentzian(x, y) - lorentzian(y, x)) < 1e-9

    @given(series_pair)
    @settings(**SETTINGS)
    def test_euclidean_triangle_inequality(self, pair):
        x, y = pair
        z = (x + y) / 2.0
        assert euclidean(x, y) <= euclidean(x, z) + euclidean(z, y) + 1e-9

    @given(series_pair)
    @settings(**SETTINGS)
    def test_lorentzian_dominated_by_manhattan(self, pair):
        """log(1+t) <= t pointwise, so Lorentzian <= Manhattan."""
        x, y = pair
        assert lorentzian(x, y) <= manhattan(x, y) + 1e-9

    @given(series_pair)
    @settings(**SETTINGS)
    def test_nonnegativity(self, pair):
        x, y = pair
        assert euclidean(x, y) >= 0.0
        assert manhattan(x, y) >= 0.0
        assert lorentzian(x, y) >= 0.0


class TestSlidingProperties:
    @given(series_pair)
    @settings(**SETTINGS)
    def test_fft_equals_naive(self, pair):
        x, y = pair
        assert np.allclose(
            cross_correlation(x, y),
            cross_correlation_naive(x, y),
            atol=1e-6 * max(1.0, float(np.abs(x).max() * np.abs(y).max())),
        )

    @given(series)
    @settings(**SETTINGS)
    def test_sbd_shift_invariance(self, x):
        # Embed in zero padding so the shift stays compact-support (the
        # invariance zero-padded cross-correlation actually provides).
        padded = np.concatenate([np.zeros(4), x, np.zeros(4)])
        if np.linalg.norm(padded) > 1e-6:
            shifted = np.roll(padded, 3)
            assert ncc_c(padded, shifted) < 1e-6

    @given(series_pair, st.floats(min_value=0.1, max_value=50.0))
    @settings(**SETTINGS)
    def test_sbd_scale_invariance(self, pair, scale):
        x, y = pair
        if np.linalg.norm(x) > 1e-6 and np.linalg.norm(y) > 1e-6:
            assert abs(ncc_c(x, scale * y) - ncc_c(x, y)) < 1e-8


class TestElasticProperties:
    @given(series_pair)
    @settings(**SETTINGS)
    def test_dtw_leq_euclidean(self, pair):
        x, y = pair
        assert dtw(x, y, delta=100.0) <= euclidean(x, y) + 1e-9

    @given(series_pair)
    @settings(**SETTINGS)
    def test_lb_keogh_bounds_dtw(self, pair):
        x, y = pair
        assert lb_keogh(x, y, 10.0) <= dtw(x, y, 10.0) + 1e-9

    @given(series_pair)
    @settings(**SETTINGS)
    def test_msm_symmetry(self, pair):
        x, y = pair
        assert abs(msm(x, y, c=0.5) - msm(y, x, c=0.5)) < 1e-9

    @given(series_pair)
    @settings(**SETTINGS)
    def test_erp_symmetry_and_identity(self, pair):
        x, y = pair
        assert erp(x, x) == 0.0
        assert abs(erp(x, y) - erp(y, x)) < 1e-9

    @given(series_pair)
    @settings(**SETTINGS)
    def test_twe_nonnegative(self, pair):
        x, y = pair
        assert twe(x, y) >= -1e-12


class TestNormalizationProperties:
    @given(series)
    @settings(**SETTINGS)
    def test_zscore_idempotent(self, x):
        if np.std(x) > 1e-6:
            z = zscore(x)
            assert np.allclose(zscore(z), z, atol=1e-8)

    @given(series)
    @settings(**SETTINGS)
    def test_unit_length_idempotent(self, x):
        if np.linalg.norm(x) > 1e-6:
            u = unit_length(x)
            assert np.allclose(unit_length(u), u, atol=1e-10)

    @given(series)
    @settings(**SETTINGS)
    def test_minmax_range(self, x):
        out = minmax(x)
        assert out.min() >= -1e-12 and out.max() <= 1.0 + 1e-12

    @given(series, st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=-5.0, max_value=5.0))
    @settings(**SETTINGS)
    def test_zscore_affine_invariance(self, x, a, b):
        """The M1 motivation: z-score removes scale and translation."""
        if np.std(x) > 1e-3:
            assert np.allclose(zscore(a * x + b), zscore(x), atol=1e-6)
