"""Tests for the UCR-suite-style cascading 1-NN search."""

import numpy as np
import pytest

from repro.distances.elastic import dtw
from repro.search import CascadeStats, cascade_nn_search, dtw_early_abandon


@pytest.fixture(scope="module")
def corpus(rng):
    base = np.sin(np.linspace(0, 6 * np.pi, 48))
    rows = [base + rng.normal(0, 0.2, size=48) for _ in range(8)]
    rows += [rng.normal(0, 1.0, size=48) + 5.0 * i for i in range(12)]
    return np.vstack(rows)


class TestEarlyAbandonDTW:
    def test_exact_when_below_threshold(self, random_pairs):
        for x, y in random_pairs:
            exact = dtw(x, y, 10.0)
            assert dtw_early_abandon(x, y, 10.0, exact + 1.0) == pytest.approx(
                exact
            )

    def test_inf_when_cannot_win(self, random_pairs):
        for x, y in random_pairs:
            exact = dtw(x, y, 10.0)
            if exact > 0.1:
                assert np.isinf(dtw_early_abandon(x, y, 10.0, exact * 0.5))

    def test_threshold_just_below_distance_abandons(self, sine_pair):
        # (Exactly-at-threshold is ambiguous by one ulp through the
        # sqrt/square roundtrip, so test a strictly smaller threshold.)
        x, y = sine_pair
        exact = dtw(x, y, 10.0)
        assert np.isinf(dtw_early_abandon(x, y, 10.0, exact * (1 - 1e-6)))


class TestCascadeSearch:
    @pytest.mark.parametrize("delta", [0.0, 10.0, 100.0])
    def test_matches_exhaustive(self, corpus, rng, delta):
        query = corpus[0] + rng.normal(0, 0.1, size=48)
        idx, dist, stats = cascade_nn_search(query, corpus, delta=delta)
        exhaustive = [dtw(query, c, delta) for c in corpus]
        assert idx == int(np.argmin(exhaustive))
        assert dist == pytest.approx(min(exhaustive))
        assert isinstance(stats, CascadeStats)

    def test_stats_partition_candidates(self, corpus, rng):
        query = corpus[0] + rng.normal(0, 0.1, size=48)
        _, _, stats = cascade_nn_search(query, corpus, delta=10.0)
        assert (
            stats.pruned_by_kim
            + stats.pruned_by_keogh
            + stats.abandoned
            + stats.full_computations
            == stats.total
        )

    def test_cascade_prunes_diverse_corpus(self, corpus, rng):
        query = corpus[0] + rng.normal(0, 0.1, size=48)
        _, _, stats = cascade_nn_search(query, corpus, delta=10.0)
        # The 12 offset-by-5i rows are trivially far: most must be pruned
        # or abandoned before a full DTW.
        assert stats.pruning_rate > 0.3

    def test_pruning_rate_zero_on_empty_stats(self):
        stats = CascadeStats(0, 0, 0, 0, 0)
        assert stats.pruning_rate == 0.0
