"""Tests for the observability subsystem: bus, sinks, traces, CLI."""

import json
import threading
from collections import Counter

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.evaluation import MeasureVariant, run_sweep
from repro.exceptions import TraceError
from repro.observability import (
    Event,
    EventBus,
    JsonlSink,
    MetricsSink,
    ProgressSink,
    Recorder,
    get_bus,
    load_trace,
    span_signature,
    summarize_events,
    summarize_trace,
    trace_to,
)
from repro.reporting import format_trace_summary


@pytest.fixture()
def bus():
    return EventBus()


class TestEventBus:
    def test_span_times_body(self, bus):
        recorder = bus.attach(Recorder())
        with bus.span("work", item="a") as sp:
            sp.set(found=1)
        (event,) = recorder.events
        assert event.kind == "span"
        assert event.name == "work"
        assert event.attrs == {"item": "a", "found": 1}
        assert event.duration_seconds >= 0.0

    def test_span_is_noop_without_sinks(self, bus):
        span = bus.span("work", item="a")
        with span as sp:
            sp.set(ignored=True)  # must not raise
        assert sp.duration_seconds is None
        # the same shared no-op object is reused — no per-call allocation
        assert bus.span("other") is span

    def test_span_emits_on_error(self, bus):
        recorder = bus.attach(Recorder())
        with pytest.raises(ValueError):
            with bus.span("work"):
                raise ValueError("boom")
        (event,) = recorder.events
        assert event.attrs["error"] == "ValueError"

    def test_counters_accumulate_without_sinks(self, bus):
        bus.count("c.hits")
        bus.count("c.hits", 2)
        assert bus.counters() == {"c.hits": 3}
        bus.reset_counters()
        assert bus.counters() == {}

    def test_counter_events_reach_sinks(self, bus):
        recorder = bus.attach(Recorder())
        bus.count("c.bytes", 128)
        assert recorder.counters() == {"c.bytes": 128}

    def test_sink_context_detaches(self, bus):
        recorder = Recorder()
        with bus.sink(recorder):
            assert bus.enabled
        assert not bus.enabled

    def test_swap_sinks_isolates(self, bus):
        outer = bus.attach(Recorder())
        inner = Recorder()
        previous = bus.swap_sinks([inner])
        bus.emit_span("work", 0.1)
        bus.swap_sinks(previous)
        bus.emit_span("after", 0.1)
        assert [e.name for e in inner.events] == ["work"]
        assert [e.name for e in outer.events] == ["after"]

    def test_replay_folds_counters_and_forwards(self, bus):
        recorder = bus.attach(Recorder())
        shipped = [
            Event("counter", "cache.hit", value=2).to_dict(),
            Event("span", "work", {"x": 1}, 0.5).to_dict(),
        ]
        assert bus.replay(shipped) == 2
        assert bus.counters()["cache.hit"] == 2
        assert len(recorder.events) == 2

    def test_event_dict_roundtrip(self):
        event = Event("span", "work", {"a": 1}, 0.25)
        assert Event.from_dict(event.to_dict()) == event

    def test_event_roundtrip_keeps_span_ids(self):
        event = Event("span", "work", {"a": 1}, 0.25, span_id="1.2", parent_id="1.1")
        assert Event.from_dict(event.to_dict()) == event

    def test_spans_carry_tree_links(self, bus):
        recorder = bus.attach(Recorder())
        with bus.span("outer"):
            with bus.span("inner"):
                pass
            bus.emit_span("pre.timed", 0.1)
        inner, pre_timed, outer = recorder.events
        assert outer.span_id is not None and outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert pre_timed.parent_id == outer.span_id
        assert len({outer.span_id, inner.span_id, pre_timed.span_id}) == 3

    def test_attach_during_emit_does_not_corrupt(self, bus):
        """Copy-on-write sinks: a sink attached mid-dispatch is picked up
        from the next event on, without corrupting the iteration."""
        late = Recorder()

        class Attacher:
            def __init__(self):
                self.armed = True

            def handle(self, event):
                if self.armed:
                    self.armed = False
                    bus.attach(late)

        bus.attach(Attacher())
        bus.attach(Recorder())
        bus.emit_span("first", 0.1)
        bus.emit_span("second", 0.1)
        assert [e.name for e in late.events] == ["second"]

    def test_concurrent_counts_and_spans(self, bus):
        recorder = bus.attach(Recorder())
        metrics = bus.attach(MetricsSink(group_by=("thread",)))
        n_threads, per_thread = 8, 100

        def hammer(index):
            for _ in range(per_thread):
                bus.count("hammer.count")
                with bus.span("hammer.span", thread=index):
                    pass

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert bus.counters()["hammer.count"] == n_threads * per_thread
        assert len(recorder.spans("hammer.span")) == n_threads * per_thread
        for i in range(n_threads):
            assert metrics.get("hammer.span", thread=i).count == per_thread


class TestSinks:
    def test_jsonl_sink_roundtrip(self, bus, tmp_path):
        path = tmp_path / "trace.jsonl"
        with bus.sink(JsonlSink(path)) as sink:
            with bus.span("work", item="a"):
                pass
            bus.count("c.hits")
            sink.close()
        events = load_trace(path)
        assert [e.name for e in events] == ["work", "c.hits"]
        assert events[0].attrs == {"item": "a"}

    def test_trace_to_writes_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        before = get_bus().enabled
        with trace_to(path):
            get_bus().emit_span("work", 0.01, item="a")
        assert get_bus().enabled == before  # sink detached on exit
        events = load_trace(path)
        assert [e.name for e in events] == ["work"]

    def test_progress_sink_formats_cells(self, bus, capsys):
        import sys

        bus.attach(ProgressSink(stream=sys.stdout))
        bus.emit_span(
            "sweep.cell", 0.0123, variant="ED", dataset="Syn1", accuracy=0.5
        )
        bus.emit_span("matrix.compute", 0.5, measure="euclidean")
        out = capsys.readouterr().out
        assert out.count("\n") == 1
        assert "ED on Syn1" in out and "acc=0.5000" in out

    def test_jsonl_sink_serializes_numpy_scalars(self, bus, tmp_path):
        """Regression: the runner stores numpy scalars in span attrs
        (``span.set(accuracy=np.float64(...))``); plain json.dumps raises
        TypeError on those and used to kill the trace."""
        path = tmp_path / "numpy.jsonl"
        with bus.sink(JsonlSink(path)) as sink:
            bus.emit_span(
                "sweep.cell",
                0.5,
                accuracy=np.float64(0.9714),
                n=np.int64(3),
                flag=np.bool_(True),
                grid=np.array([1.0, 2.0]),
            )
            sink.close()
        (event,) = load_trace(path)
        assert event.attrs["accuracy"] == pytest.approx(0.9714)
        assert event.attrs["n"] == 3
        assert event.attrs["flag"] is True
        assert event.attrs["grid"] == [1.0, 2.0]

    def test_progress_sink_tolerates_non_numeric_accuracy(self, bus, capsys):
        import sys

        bus.attach(ProgressSink(stream=sys.stdout))
        bus.emit_span("sweep.cell", 0.01, variant="ED", accuracy=None)
        bus.emit_span("sweep.cell", 0.01, variant="ED", accuracy="skipped")
        bus.emit_span(
            "sweep.cell", 0.01, variant="ED", accuracy=np.float64(0.5)
        )
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert len(lines) == 3  # every cell still got a line
        assert "acc=skipped" in lines[1]
        assert "acc=0.5000" in lines[2]

    def test_progress_sink_never_raises(self, bus):
        class BrokenStream:
            def write(self, text):
                raise OSError("closed pipe")

            def flush(self):
                raise OSError("closed pipe")

        bus.attach(ProgressSink(stream=BrokenStream()))
        bus.emit_span("sweep.cell", 0.01, variant="ED", accuracy=0.5)

    def test_recorder_queries(self, bus):
        recorder = bus.attach(Recorder())
        bus.emit_span("a", 1.0)
        bus.emit_span("a", 2.0)
        bus.emit_span("b", 4.0)
        assert recorder.total_seconds("a") == pytest.approx(3.0)
        assert len(recorder.spans()) == 3
        assert len(recorder.spans("b")) == 1


class TestTraceEquivalence:
    """Serial and parallel sweeps must emit the same span set."""

    @pytest.fixture(scope="class")
    def setup(self, tiny_archive):
        datasets = tiny_archive.subset(3)
        variants = [
            MeasureVariant("euclidean", label="ED"),
            MeasureVariant("lorentzian", normalization="minmax", label="Lor"),
            MeasureVariant(
                "dtw", tuning="loocv",
                grid=[{"delta": 0.0}, {"delta": 10.0}], label="DTW",
            ),
        ]
        return variants, datasets

    def test_serial_and_parallel_span_sets_match(self, setup):
        variants, datasets = setup
        bus = get_bus()
        serial, parallel = Recorder(), Recorder()
        with bus.sink(serial):
            run_sweep(variants, datasets)
        with bus.sink(parallel):
            run_sweep(variants, datasets, executor="process", workers=2)
        serial_set = Counter(span_signature(e) for e in serial.spans())
        parallel_set = Counter(span_signature(e) for e in parallel.spans())
        assert serial_set == parallel_set

    def test_trace_covers_all_levels(self, setup):
        variants, datasets = setup
        recorder = Recorder()
        with get_bus().sink(recorder):
            run_sweep(variants, datasets)
        names = {e.name for e in recorder.spans()}
        assert {"sweep", "sweep.variant", "sweep.cell", "matrix.compute"} <= names
        assert "variant.tune" in names  # the LOOCV variant
        cells = recorder.spans("sweep.cell")
        assert len(cells) == len(variants) * len(datasets)
        assert all("accuracy" in e.attrs for e in cells)

    def test_serial_and_parallel_metrics_aggregates_match(self, setup):
        """The MetricsSink view of a sweep is the same serial and
        parallel: same keys, same per-key observation counts (durations
        are machine noise and differ), and splitting either event stream
        into per-worker sinks then merging loses nothing."""
        variants, datasets = setup
        bus = get_bus()
        group_by = ("family", "variant", "dataset")
        serial_rec, parallel_rec = Recorder(), Recorder()
        serial_metrics = MetricsSink(group_by=group_by)
        parallel_metrics = MetricsSink(group_by=group_by)
        with bus.sink(serial_rec), bus.sink(serial_metrics):
            run_sweep(variants, datasets)
        with bus.sink(parallel_rec), bus.sink(parallel_metrics):
            run_sweep(variants, datasets, executor="process", workers=2)
        serial_aggs = serial_metrics.aggregates()
        parallel_aggs = parallel_metrics.aggregates()
        assert set(serial_aggs) == set(parallel_aggs)
        assert {k: a.count for k, a in serial_aggs.items()} == {
            k: a.count for k, a in parallel_aggs.items()
        }
        # lossless merge: chunked per-"worker" sinks combine into exactly
        # the aggregate of the full stream
        events = parallel_rec.events
        merged = MetricsSink(group_by=group_by)
        for start in range(0, len(events), 7):
            worker_sink = MetricsSink(group_by=group_by)
            for event in events[start : start + 7]:
                worker_sink.handle(event)
            merged.merge(worker_sink)
        assert merged.aggregates() == parallel_aggs

    def test_parallel_events_reach_parent_jsonl(self, setup, tmp_path):
        variants, datasets = setup
        path = tmp_path / "parallel.jsonl"
        with trace_to(path):
            run_sweep(variants, datasets, executor="process", workers=2)
        events = load_trace(path)
        assert sum(e.name == "sweep.cell" for e in events) == len(
            variants
        ) * len(datasets)


class TestSummary:
    def _events(self):
        return [
            Event("span", "sweep", {"n_variants": 2, "n_datasets": 2}, 10.0),
            Event("span", "sweep.cell",
                  {"variant": "ED", "dataset": "A", "accuracy": 0.5}, 1.0),
            Event("span", "sweep.cell",
                  {"variant": "ED", "dataset": "B", "accuracy": 0.7}, 2.0),
            Event("span", "sweep.cell",
                  {"variant": "MSM", "dataset": "A", "accuracy": 0.9}, 6.0),
            Event("counter", "cache.hit", value=3),
        ]

    def test_summarize_events(self):
        summary = summarize_events(self._events())
        assert [row.label for row in summary.variants] == ["MSM", "ED"]
        ed = summary.variants[1]
        assert ed.cells == 2
        assert ed.total_seconds == pytest.approx(3.0)
        assert ed.mean_accuracy == pytest.approx(0.6)
        assert summary.sweep_seconds == pytest.approx(10.0)
        assert dict(summary.datasets) == {"A": 7.0, "B": 2.0}
        assert summary.counters == {"cache.hit": 3}

    def test_format_trace_summary(self):
        text = format_trace_summary(summarize_events(self._events()))
        assert "MSM" in text and "ED" in text
        assert "cache.hit" in text
        assert "100.0%" in text

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span", "name": "ok"}\nnot json\n')
        with pytest.raises(TraceError, match="bad.jsonl:2"):
            load_trace(path)

    def test_load_trace_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_trace(tmp_path / "absent.jsonl")

    def test_summarize_trace_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as fh:
            for event in self._events():
                fh.write(json.dumps(event.to_dict()) + "\n")
        summary = summarize_trace(path)
        assert summary.n_events == 5


class TestCliTrace:
    def test_evaluate_trace_then_summarize(self, tmp_path, capsys):
        trace_path = tmp_path / "cli.jsonl"
        code = cli_main(
            ["evaluate", "euclidean", "sbd", "--datasets", "2",
             "--scale", "0.3", "--trace", str(trace_path)]
        )
        assert code == 0
        assert trace_path.exists()
        capsys.readouterr()
        code = cli_main(["trace", "summarize", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Trace summary" in out
        assert "events)" in out

    def test_trace_summarize_matches_recorder_aggregates(
        self, tiny_archive, tmp_path, capsys
    ):
        """End-to-end: trace_to() -> summarize; per-measure totals agree
        with the in-memory Recorder view of the same sweep."""
        datasets = tiny_archive.subset(2)
        variants = [
            MeasureVariant("euclidean", label="ED"),
            MeasureVariant("sbd", label="NCC_c"),
        ]
        path = tmp_path / "e2e.jsonl"
        recorder = Recorder()
        with get_bus().sink(recorder), trace_to(path):
            run_sweep(variants, datasets)
        summary = summarize_trace(path)
        by_label = {row.label: row for row in summary.variants}
        for label in ("ED", "NCC_c"):
            cells = [
                e
                for e in recorder.spans("sweep.cell")
                if e.attrs["variant"] == label
            ]
            assert by_label[label].cells == len(cells) == len(datasets)
            assert by_label[label].total_seconds == pytest.approx(
                sum(e.duration_seconds for e in cells)
            )
            assert by_label[label].mean_accuracy == pytest.approx(
                sum(e.attrs["accuracy"] for e in cells) / len(cells)
            )
        assert summary.sweep_seconds == pytest.approx(
            recorder.total_seconds("sweep")
        )
        # the CLI path over the same file renders the critical path too
        code = cli_main(["trace", "summarize", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ED" in out and "NCC_c" in out
        assert "Critical path" in out

    def test_progress_flag_prints_cells(self, capsys):
        code = cli_main(
            ["evaluate", "euclidean", "--datasets", "2", "--scale", "0.3",
             "--progress"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "acc=" in captured.err


class TestGlobalEntryPoints:
    def test_get_recorder_is_singleton_and_attached(self):
        import repro

        first = repro.get_recorder()
        try:
            assert repro.get_recorder() is first
            start = len(first.events)
            get_bus().emit_span("entrypoint.check", 0.0)
            assert len(first.events) == start + 1
        finally:
            # detach so the rest of the suite keeps its zero-cost fast path
            get_bus().detach(first)
            import repro.observability as obs

            obs._GLOBAL_RECORDER = None
