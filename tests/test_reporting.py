"""Tests for the paper-style table/figure renderers."""

import numpy as np
import pytest

from repro.distances import category_counts
from repro.evaluation import (
    MeasureVariant,
    RuntimePoint,
    compare_to_baseline,
    run_sweep,
)
from repro.evaluation.convergence import ConvergenceCurve
from repro.reporting import (
    format_census_table,
    format_comparison_table,
    format_convergence_figure,
    format_rank_figure,
    format_runtime_figure,
)
from repro.stats import nemenyi_test


@pytest.fixture(scope="module")
def demo_sweep(tiny_archive):
    variants = [
        MeasureVariant("euclidean", label="ED"),
        MeasureVariant("manhattan", label="Manhattan"),
        MeasureVariant("lorentzian", label="Lorentzian"),
    ]
    return run_sweep(variants, tiny_archive.subset(3))


class TestComparisonTable:
    def test_contains_all_rows_and_baseline(self, demo_sweep):
        table = compare_to_baseline(demo_sweep, "ED")
        text = format_comparison_table(table, "Demo")
        assert "Demo" in text
        assert "Manhattan" in text and "Lorentzian" in text
        assert "ED" in text and "base" in text
        assert "(3 datasets)" in text

    def test_census_table_counts(self):
        text = format_census_table(category_counts())
        assert "Lock-step" in text and "52" in text
        assert "Sliding" in text and "Elastic" in text


class TestRankFigure:
    def test_mentions_cd_and_measures(self, demo_sweep):
        result = nemenyi_test(demo_sweep.labels, demo_sweep.accuracies)
        text = format_rank_figure(result, "Figure X")
        assert "CD=" in text
        for name in demo_sweep.labels:
            assert name in text

    def test_cliques_listed_when_present(self, demo_sweep):
        result = nemenyi_test(demo_sweep.labels, demo_sweep.accuracies)
        text = format_rank_figure(result, "F")
        if any(len(c) > 1 for c in result.cliques):
            assert "clique" in text


class TestRuntimeFigure:
    def test_rows_rendered(self):
        points = [
            RuntimePoint("ED", 0.68, 0.001, "O(m)"),
            RuntimePoint("DTW", 0.75, 0.8, "O(m^2)"),
        ]
        text = format_runtime_figure(points, "Figure 9")
        assert "ED" in text and "O(m^2)" in text
        assert "0.7500" in text


class TestConvergenceFigure:
    def test_sizes_and_errors_rendered(self):
        curves = [
            ConvergenceCurve("ED", (10, 20), (0.4, 0.3)),
            ConvergenceCurve("NCC_c", (10, 20), (0.2, 0.1)),
        ]
        text = format_convergence_figure(curves, "Figure 10")
        assert "10" in text and "20" in text
        assert "0.4000" in text and "NCC_c" in text
