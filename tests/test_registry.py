"""Tests for the measure registry machinery (repro.distances.base)."""

import numpy as np
import pytest

from repro.distances import (
    CATEGORIES,
    BoundMeasure,
    DistanceMeasure,
    category_counts,
    distance,
    get_measure,
    iter_measures,
    list_measures,
    pairwise_distances,
    register_measure,
)
from repro.exceptions import ParameterError, UnknownMeasureError


class TestLookup:
    def test_case_and_punctuation_insensitive(self):
        assert get_measure("NCC_c").name == "nccc"
        assert get_measure("Shape-Based-Distance").name == "nccc"
        assert get_measure("kullback_leibler").name == "kullbackleibler"

    def test_identity_lookup(self):
        measure = get_measure("euclidean")
        assert get_measure(measure) is measure

    def test_unknown_raises_keyerror_subclass(self):
        with pytest.raises(UnknownMeasureError):
            get_measure("definitely-not-a-measure")
        with pytest.raises(KeyError):
            get_measure("definitely-not-a-measure")

    def test_list_filters_compose(self):
        l1 = list_measures("lockstep", "l1")
        assert "lorentzian" in l1 and len(l1) == 6

    def test_iter_measures_sorted(self):
        names = [m.name for m in iter_measures("elastic")]
        assert names == sorted(names)

    def test_category_counts_cover_all_categories(self):
        counts = category_counts()
        assert set(counts) == set(CATEGORIES)
        assert counts["lockstep"] == 52


class TestParams:
    def test_resolve_unknown_param_rejected(self):
        with pytest.raises(ParameterError, match="delta"):
            get_measure("dtw").resolve_params({"window": 5})

    def test_resolve_merges_defaults(self):
        resolved = get_measure("twe").resolve_params({"lam": 0.5})
        assert resolved == {"lam": 0.5, "nu": 1e-4}

    def test_param_grid_cartesian(self):
        grid = get_measure("twe").param_grid()
        assert len(grid) == 5 * 6
        assert all(set(combo) == {"lam", "nu"} for combo in grid)

    def test_parameter_free_grid_is_single_empty(self):
        assert get_measure("euclidean").param_grid() == [{}]


class TestBoundMeasure:
    def test_binds_parameters(self, sine_pair):
        x, y = sine_pair
        bound = get_measure("dtw").with_params(delta=0.0)
        assert isinstance(bound, BoundMeasure)
        assert bound(x, y) == pytest.approx(get_measure("dtw")(x, y, delta=0.0))

    def test_name_encodes_params(self):
        bound = get_measure("dtw").with_params(delta=5.0)
        assert bound.name == "dtw[delta=5]"

    def test_parameter_free_bound_keeps_name(self):
        assert get_measure("euclidean").with_params().name == "euclidean"

    def test_pairwise_delegates(self, rng):
        X = rng.normal(size=(3, 10))
        bound = get_measure("msm").with_params(c=0.1)
        assert np.allclose(
            bound.pairwise(X), get_measure("msm").pairwise(X, c=0.1)
        )


class TestRegistration:
    def test_name_clash_rejected(self):
        with pytest.raises(ParameterError, match="clash"):
            register_measure(
                DistanceMeasure(
                    name="euclidean-clone",
                    label="Clone",
                    category="extra",
                    family="special",
                    func=lambda x, y: 0.0,
                    aliases=("euclidean",),  # collides with ED
                )
            )

    def test_invalid_category_rejected(self):
        with pytest.raises(ParameterError):
            DistanceMeasure(
                name="bad",
                label="Bad",
                category="nonsense",
                family="special",
                func=lambda x, y: 0.0,
            )


class TestConvenienceFunctions:
    def test_distance_entry_point(self):
        assert distance([0.0, 0.0], [3.0, 4.0], "euclidean") == 5.0

    def test_pairwise_entry_point(self, rng):
        X = rng.normal(size=(4, 8))
        D = pairwise_distances(X, measure="manhattan")
        assert D.shape == (4, 4)
        assert np.allclose(np.diag(D), 0.0)

    def test_pairwise_length_mismatch_rejected(self, rng):
        with pytest.raises(ParameterError, match="equal-length"):
            pairwise_distances(
                rng.normal(size=(2, 8)),
                rng.normal(size=(2, 9)),
                measure="euclidean",
            )


class TestRegistrationAtomicity:
    def test_failed_registration_leaves_registry_clean(self):
        """A clash on any alias must not leave partial keys behind."""
        with pytest.raises(ParameterError):
            register_measure(
                DistanceMeasure(
                    name="phantom-measure",
                    label="Phantom",
                    category="extra",
                    family="special",
                    func=lambda x, y: 0.0,
                    aliases=("dtw",),  # clashes after the name would insert
                )
            )
        with pytest.raises(UnknownMeasureError):
            get_measure("phantom-measure")
