"""Smoke tests: every example script must run to completion.

Examples rot silently otherwise; each is executed in a subprocess exactly
as a user would run it. The slowest (measure_benchmark with LOOCV) gets a
reduced dataset count through its CLI argument.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "ecg_alignment.py",
    "motif_anomaly_discovery.py",
    "clustering_kshape.py",
    "representation_indexing.py",
    "embedding_representations.py",
    "similarity_search.py",
]


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_measure_benchmark_with_reduced_datasets():
    result = _run("measure_benchmark.py", "4")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Average ranks" in result.stdout


def test_examples_directory_complete():
    """Every shipped example is exercised by this module."""
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = set(FAST_EXAMPLES) | {"measure_benchmark.py"}
    assert shipped == covered
