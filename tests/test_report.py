"""Tests for the benchmark report collator."""

import pytest

from repro.exceptions import ReproError
from repro.reporting.report import collate_results, write_report


@pytest.fixture()
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "table2_lockstep.txt").write_text("Table 2 content\n")
    (d / "figure9_accuracy_runtime.txt").write_text("Figure 9 content\n")
    (d / "ablation_custom.txt").write_text("Ablation content\n")
    return d


class TestCollate:
    def test_contains_all_sections(self, results_dir):
        report = collate_results(results_dir)
        assert "## table2_lockstep" in report
        assert "## figure9_accuracy_runtime" in report
        assert "## ablation_custom" in report
        assert "Table 2 content" in report

    def test_paper_order_before_extras(self, results_dir):
        report = collate_results(results_dir)
        assert report.index("table2_lockstep") < report.index(
            "figure9_accuracy_runtime"
        ) < report.index("ablation_custom")

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            collate_results(tmp_path / "nope")

    def test_empty_dir_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ReproError, match="no results"):
            collate_results(empty)

    def test_write_report_creates_file(self, results_dir):
        target = write_report(results_dir)
        assert target.name == "REPORT.md"
        assert "Table 2 content" in target.read_text()

    def test_report_md_not_reconsumed(self, results_dir):
        write_report(results_dir)
        report = collate_results(results_dir)  # .md files are not *.txt
        assert report.count("## ") == 3
