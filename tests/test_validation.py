"""Unit tests for input validation/coercion helpers."""

import numpy as np
import pytest

from repro._validation import (
    EPS,
    as_dataset,
    as_labels,
    as_pair,
    as_series,
    check_positive,
    check_probability_like,
)
from repro.exceptions import ValidationError


class TestAsSeries:
    def test_list_coerced_to_float64(self):
        out = as_series([1, 2, 3])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_row_vector_flattened(self):
        out = as_series(np.ones((1, 5)))
        assert out.shape == (5,)

    def test_column_vector_flattened(self):
        out = as_series(np.ones((5, 1)))
        assert out.shape == (5,)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            as_series([])

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            as_series(np.ones((2, 3)))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError, match="NaN"):
            as_series([1.0, np.nan, 2.0])

    def test_inf_rejected(self):
        with pytest.raises(ValidationError):
            as_series([1.0, np.inf])

    def test_contiguous_output(self):
        strided = np.arange(20, dtype=np.float64)[::2]
        out = as_series(strided)
        assert out.flags["C_CONTIGUOUS"]


class TestAsPair:
    def test_equal_length_enforced(self):
        with pytest.raises(ValidationError, match="equal length"):
            as_pair([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_unequal_allowed_when_requested(self):
        x, y = as_pair([1.0, 2.0], [1.0, 2.0, 3.0], require_equal_length=False)
        assert x.shape == (2,) and y.shape == (3,)


class TestAsDataset:
    def test_single_series_promoted(self):
        out = as_dataset([1.0, 2.0, 3.0])
        assert out.shape == (1, 3)

    def test_matrix_passthrough(self):
        out = as_dataset(np.ones((4, 6)))
        assert out.shape == (4, 6)

    def test_3d_rejected(self):
        with pytest.raises(ValidationError):
            as_dataset(np.ones((2, 3, 4)))

    def test_nan_rejected(self):
        data = np.ones((2, 3))
        data[0, 1] = np.nan
        with pytest.raises(ValidationError):
            as_dataset(data)


class TestAsLabels:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            as_labels([0, 1], 3)

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            as_labels(np.zeros((2, 2)), 2)


class TestScalarChecks:
    def test_check_positive_accepts(self):
        assert check_positive(1.5, "x") == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_positive(bad, "x")

    def test_probability_clip_floors_values(self):
        out = check_probability_like(np.array([-1.0, 0.0, 0.5]))
        assert (out >= EPS).all()
        assert out[2] == 0.5
