"""Tests for variants, sweeps, comparisons, runtime and convergence."""

import numpy as np
import pytest

from repro.evaluation import (
    MeasureVariant,
    accuracy_runtime_points,
    compare_to_baseline,
    convergence_curves,
    convergence_gaps,
    full_grid,
    reduced_grid,
    run_sweep,
    table4_rows,
    unsupervised_params,
)
from repro.exceptions import EvaluationError, ParameterError


@pytest.fixture(scope="module")
def demo_sweep(tiny_archive):
    datasets = tiny_archive.subset(4)
    variants = [
        MeasureVariant("euclidean", label="ED"),
        MeasureVariant("lorentzian", label="Lorentzian"),
        MeasureVariant("nccc", label="NCC_c"),
    ]
    return run_sweep(variants, datasets)


class TestMeasureVariant:
    def test_display_composition(self):
        v = MeasureVariant("dtw", normalization="zscore", params={"delta": 10.0})
        assert "dtw" in v.display and "delta=10" in v.display

    def test_invalid_tuning_rejected(self):
        with pytest.raises(ParameterError):
            MeasureVariant("dtw", tuning="magic")

    def test_fixed_evaluation(self, small_dataset):
        result = MeasureVariant("euclidean").evaluate(small_dataset)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.inference_seconds > 0.0
        assert result.dataset == small_dataset.name

    def test_loocv_evaluation_reports_chosen_params(self, small_dataset):
        v = MeasureVariant(
            "dtw", tuning="loocv", grid=[{"delta": 0.0}, {"delta": 10.0}]
        )
        result = v.evaluate(small_dataset)
        assert result.params["delta"] in (0.0, 10.0)

    def test_embedding_variant(self, small_dataset):
        v = MeasureVariant("grail", params={"dimensions": 6})
        assert v.is_embedding
        result = v.evaluate(small_dataset)
        assert 0.0 <= result.accuracy <= 1.0

    def test_loocv_beats_or_matches_worst_fixed(self, shifted_dataset):
        """Supervised tuning can only help on its own training data; on
        shift data it must not be worse than the bad fixed choice."""
        grid = [{"delta": 0.0}, {"delta": 100.0}]
        tuned = MeasureVariant("dtw", tuning="loocv", grid=grid).evaluate(
            shifted_dataset
        )
        worst = min(
            MeasureVariant("dtw", params=g).evaluate(shifted_dataset).accuracy
            for g in grid
        )
        assert tuned.accuracy >= worst


class TestSweep:
    def test_matrix_shapes(self, demo_sweep):
        assert demo_sweep.accuracies.shape == (4, 3)
        assert demo_sweep.inference_seconds.shape == (4, 3)

    def test_column_lookup(self, demo_sweep):
        col = demo_sweep.column("ED")
        assert col.shape == (4,)
        with pytest.raises(EvaluationError):
            demo_sweep.column("nope")

    def test_mean_accuracy_keys(self, demo_sweep):
        means = demo_sweep.mean_accuracy()
        assert set(means) == {"ED", "Lorentzian", "NCC_c"}
        assert all(0.0 <= v <= 1.0 for v in means.values())

    def test_to_rows_flat_records(self, demo_sweep):
        rows = demo_sweep.to_rows()
        assert len(rows) == 12
        assert {"variant", "dataset", "accuracy", "inference_seconds"} <= set(
            rows[0]
        )

    def test_empty_inputs_rejected(self):
        with pytest.raises(EvaluationError):
            run_sweep([], [])

    def test_progress_callback_called(self, tiny_archive):
        lines = []
        with pytest.warns(DeprecationWarning):  # superseded by ProgressSink
            run_sweep(
                [MeasureVariant("euclidean", label="ED")],
                tiny_archive.subset(2),
                progress=lines.append,
            )
        assert len(lines) == 2
        assert "ED" in lines[0]


class TestComparison:
    def test_baseline_excluded_from_rows(self, demo_sweep):
        table = compare_to_baseline(demo_sweep, "ED")
        labels = [row.label for row in table.rows]
        assert "ED" not in labels
        assert table.baseline_label == "ED"

    def test_counts_sum_to_dataset_count(self, demo_sweep):
        table = compare_to_baseline(demo_sweep, "ED")
        for row in table.rows:
            assert sum(row.counts) == table.n_datasets

    def test_only_above_baseline_filter(self, demo_sweep):
        table = compare_to_baseline(demo_sweep, "ED", only_above_baseline=True)
        for row in table.rows:
            assert row.average_accuracy > table.baseline_accuracy

    def test_winners_subset_of_rows(self, demo_sweep):
        table = compare_to_baseline(demo_sweep, "ED")
        assert set(r.label for r in table.winners()) <= set(
            r.label for r in table.rows
        )


class TestParamGrids:
    def test_full_grid_matches_registry(self):
        assert len(full_grid("dtw")) == 22
        assert len(full_grid("twe")) == 30  # 5 lambdas x 6 nus

    def test_reduced_grids_are_subsets_in_spirit(self):
        for measure in ("dtw", "msm", "twe", "lcss", "edr", "gak", "kdtw"):
            reduced = reduced_grid(measure)
            assert 0 < len(reduced) <= len(full_grid(measure))

    def test_unsupervised_params_match_paper(self):
        assert unsupervised_params("msm") == {"c": 0.5}
        assert unsupervised_params("dtw") == {"delta": 10.0}
        assert unsupervised_params("twe") == {"lam": 1.0, "nu": 1e-4}

    def test_table4_lists_all_tunable_measures(self):
        rows = dict(table4_rows())
        assert "DTW" in rows and "delta" in rows["DTW"]
        assert "MSM" in rows and "c in" in rows["MSM"]
        assert len(rows) == 11


class TestRuntimeAnalysis:
    def test_points_sorted_by_time(self, tiny_archive):
        variants = [
            MeasureVariant("euclidean", label="ED"),
            MeasureVariant("nccc", label="NCC_c"),
            MeasureVariant("dtw", params={"delta": 5.0}, label="DTW-5"),
        ]
        points = accuracy_runtime_points(variants, tiny_archive.subset(2))
        times = [p.inference_seconds for p in points]
        assert times == sorted(times)

    def test_complexity_labels_attached(self, tiny_archive):
        variants = [
            MeasureVariant("euclidean", label="ED"),
            MeasureVariant("nccc", label="NCC_c"),
        ]
        points = accuracy_runtime_points(variants, tiny_archive.subset(2))
        by_label = {p.label: p.complexity for p in points}
        assert by_label["ED"] == "O(m)"
        assert by_label["NCC_c"] == "O(m log m)"


class TestConvergence:
    def test_curves_cover_requested_sizes(self, small_dataset):
        curves = convergence_curves(
            [MeasureVariant("euclidean", label="ED")],
            small_dataset,
            train_sizes=[6, 12, small_dataset.n_train],
        )
        assert len(curves) == 1
        assert len(curves[0].train_sizes) == 3
        assert all(0.0 <= e <= 1.0 for e in curves[0].error_rates)

    def test_gaps_relative_to_baseline(self, small_dataset):
        curves = convergence_curves(
            [
                MeasureVariant("euclidean", label="ED"),
                MeasureVariant("nccc", label="NCC_c"),
            ],
            small_dataset,
            train_sizes=[6, small_dataset.n_train],
        )
        gaps = convergence_gaps(curves, "ED")
        assert set(gaps) == {"NCC_c"}

    def test_default_ladder_monotone(self, small_dataset):
        curves = convergence_curves(
            [MeasureVariant("euclidean", label="ED")], small_dataset
        )
        sizes = curves[0].train_sizes
        assert list(sizes) == sorted(sizes)
        assert sizes[-1] == small_dataset.n_train
