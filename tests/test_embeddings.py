"""Unit tests for the 4 embedding measures (paper Section 9)."""

import numpy as np
import pytest

from repro.embeddings import (
    GRAIL,
    RWS,
    SIDL,
    SPIRAL,
    get_embedding,
    list_embeddings,
    select_landmarks_sbd,
)
from repro.exceptions import EvaluationError, UnknownMeasureError


@pytest.fixture(scope="module")
def train_test(small_dataset):
    return small_dataset.train_X, small_dataset.test_X


class TestRegistry:
    def test_four_embeddings(self):
        assert list_embeddings() == ["grail", "rws", "sidl", "spiral"]

    def test_get_by_name(self):
        assert isinstance(get_embedding("grail"), GRAIL)
        assert isinstance(get_embedding("rws"), RWS)
        assert isinstance(get_embedding("sidl"), SIDL)
        assert isinstance(get_embedding("spiral"), SPIRAL)

    def test_unknown_rejected(self):
        with pytest.raises(UnknownMeasureError):
            get_embedding("nope")

    def test_transform_before_fit_rejected(self, train_test):
        train, _ = train_test
        with pytest.raises(EvaluationError):
            get_embedding("grail").transform(train)


class TestLandmarkSelection:
    def test_count_capped_at_dataset_size(self, train_test):
        train, _ = train_test
        idx = select_landmarks_sbd(train, k=1000)
        assert idx.shape[0] == train.shape[0]

    def test_deterministic(self, train_test):
        train, _ = train_test
        a = select_landmarks_sbd(train, k=5)
        b = select_landmarks_sbd(train, k=5)
        assert np.array_equal(a, b)

    def test_no_duplicates(self, train_test):
        train, _ = train_test
        idx = select_landmarks_sbd(train, k=8)
        assert len(set(idx.tolist())) == idx.shape[0]


@pytest.mark.parametrize("name", ["grail", "rws", "sidl", "spiral"])
class TestCommonContract:
    def _make(self, name):
        return get_embedding(name, dimensions=8, random_state=0)

    def test_shapes(self, name, train_test):
        train, test = train_test
        emb = self._make(name)
        z_train = emb.fit_transform(train)
        z_test = emb.transform(test)
        assert z_train.shape[0] == train.shape[0]
        assert z_test.shape[0] == test.shape[0]
        assert z_train.shape[1] == z_test.shape[1] <= 8

    def test_finite(self, name, train_test):
        train, test = train_test
        emb = self._make(name)
        emb.fit(train)
        assert np.isfinite(emb.transform(test)).all()

    def test_deterministic_given_seed(self, name, train_test):
        train, test = train_test
        z1 = get_embedding(name, dimensions=6, random_state=1).fit(train).transform(test)
        z2 = get_embedding(name, dimensions=6, random_state=1).fit(train).transform(test)
        assert np.allclose(z1, z2)

    def test_dissimilarity_matrices_shapes(self, name, train_test):
        train, test = train_test
        W, E = self._make(name).dissimilarity_matrices(train, test)
        assert W.shape == (train.shape[0], train.shape[0])
        assert E.shape == (test.shape[0], train.shape[0])
        assert (W >= -1e-9).all() and (E >= -1e-9).all()


class TestSimilarityPreservation:
    def test_grail_ed_correlates_with_sink_distance(self, train_test):
        """The embedding contract: ED over representations preserves the
        *ordering* induced by the construction measure (here SINK) — the
        kernel-to-feature map is monotone, so rank correlation is the
        right fidelity check."""
        from scipy.stats import spearmanr

        from repro.distances.kernels import sink

        train, test = train_test
        emb = get_embedding(
            "grail", dimensions=train.shape[0], gamma=5.0
        ).fit(train)
        z_test = emb.transform(test)
        z_train = emb.transform(train)
        pairs = [(i, j) for i in range(6) for j in range(10)]
        ed = [float(np.linalg.norm(z_test[i] - z_train[j])) for i, j in pairs]
        true = [sink(test[i], train[j], gamma=5.0) for i, j in pairs]
        corr = spearmanr(ed, true).statistic
        assert corr > 0.5

    def test_spiral_ed_correlates_with_dtw(self, train_test):
        from scipy.stats import spearmanr

        from repro.distances.elastic import dtw

        train, test = train_test
        emb = get_embedding("spiral", dimensions=train.shape[0]).fit(train)
        z_test = emb.transform(test)
        z_train = emb.transform(train)
        pairs = [(i, j) for i in range(6) for j in range(10)]
        ed = [float(np.linalg.norm(z_test[i] - z_train[j])) for i, j in pairs]
        true = [dtw(test[i], train[j], 10.0) for i, j in pairs]
        corr = spearmanr(ed, true).statistic
        assert corr > 0.3

    def test_sidl_representation_is_shift_tolerant(self, rng):
        base = np.sin(np.linspace(0, 4 * np.pi, 64))
        train = np.vstack([np.roll(base, int(s)) for s in rng.integers(0, 64, 12)])
        emb = get_embedding("sidl", dimensions=4).fit(train)
        z = emb.transform(np.vstack([base, np.roll(base, 17)]))
        assert np.linalg.norm(z[0] - z[1]) < 0.2


class TestGrailAutoGamma:
    def test_auto_selects_candidate(self, train_test):
        train, _ = train_test
        emb = get_embedding("grail", dimensions=8, gamma="auto").fit(train)
        assert emb.fitted_gamma_ in GRAIL.GAMMA_CANDIDATES

    def test_fixed_gamma_recorded(self, train_test):
        train, _ = train_test
        emb = get_embedding("grail", dimensions=8, gamma=5.0).fit(train)
        assert emb.fitted_gamma_ == 5.0

    def test_auto_deterministic(self, train_test):
        train, test = train_test
        a = get_embedding("grail", dimensions=8, gamma="auto").fit(train)
        b = get_embedding("grail", dimensions=8, gamma="auto").fit(train)
        assert a.fitted_gamma_ == b.fitted_gamma_
        assert np.allclose(a.transform(test), b.transform(test))
