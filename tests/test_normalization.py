"""Unit + property tests for the 8 normalization methods (paper Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import UnknownNormalizationError
from repro.normalization import (
    PAPER_NORMALIZATIONS,
    adaptive_scaling_factor,
    get_normalizer,
    list_normalizers,
    logistic,
    mean_norm,
    median_norm,
    minmax,
    normalize,
    normalize_dataset,
    tanh,
    unit_length,
    zscore,
)

finite_series = arrays(
    np.float64,
    st.integers(min_value=2, max_value=60),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestRegistry:
    def test_eight_methods_registered(self):
        assert len(list_normalizers()) == 8

    def test_paper_order_names_resolve(self):
        for name in PAPER_NORMALIZATIONS:
            assert get_normalizer(name).name == name

    def test_aliases_resolve(self):
        assert get_normalizer("z-score").name == "zscore"
        assert get_normalizer("sigmoid").name == "logistic"
        assert get_normalizer("AdaptiveScaling").name == "adaptive"

    def test_unknown_raises(self):
        with pytest.raises(UnknownNormalizationError):
            get_normalizer("nope")

    def test_normalize_dataset_rowwise(self):
        X = np.array([[1.0, 2.0, 3.0], [10.0, 20.0, 30.0]])
        Z = normalize_dataset(X, "zscore")
        assert np.allclose(Z.mean(axis=1), 0.0)
        assert np.allclose(Z.std(axis=1), 1.0)


class TestZScore:
    @given(finite_series)
    @settings(max_examples=50, deadline=None)
    def test_zero_mean_unit_std(self, x):
        z = zscore(x)
        if np.std(x) > 1e-9:
            assert abs(z.mean()) < 1e-8
            assert abs(z.std() - 1.0) < 1e-8

    def test_constant_series_maps_to_zeros(self):
        assert np.array_equal(zscore(np.full(5, 3.0)), np.zeros(5))

    @given(finite_series)
    @settings(max_examples=50, deadline=None)
    def test_scale_translation_invariance(self, x):
        if np.std(x) > 1e-6:
            assert np.allclose(zscore(x), zscore(3.0 * x + 7.0), atol=1e-6)


class TestMinMax:
    def test_range_is_unit_interval(self):
        out = minmax(np.array([2.0, 4.0, 6.0]))
        assert out.min() == 0.0 and out.max() == 1.0

    def test_custom_range(self):
        out = minmax(np.array([0.0, 1.0]), low=-1.0, high=1.0)
        assert out.tolist() == [-1.0, 1.0]

    def test_constant_maps_to_midpoint(self):
        out = minmax(np.full(4, 9.0), low=0.0, high=2.0)
        assert np.allclose(out, 1.0)


class TestMeanNorm:
    def test_zero_mean(self):
        out = mean_norm(np.array([1.0, 2.0, 3.0, 10.0]))
        assert abs(out.mean()) < 1e-12

    def test_range_bounded_by_one(self):
        out = mean_norm(np.array([1.0, 2.0, 3.0, 10.0]))
        assert out.max() - out.min() <= 1.0 + 1e-12

    def test_constant_maps_to_zeros(self):
        assert np.array_equal(mean_norm(np.full(3, 5.0)), np.zeros(3))


class TestMedianNorm:
    def test_divides_by_median(self):
        out = median_norm(np.array([2.0, 4.0, 6.0]))
        assert np.allclose(out, [0.5, 1.0, 1.5])

    def test_zero_median_falls_back_to_mean(self):
        x = np.array([-1.0, 0.0, 1.0, 4.0])  # median 0.5? no: (0+1)/2 = 0.5
        x = np.array([-1.0, 0.0, 0.0, 5.0])  # median 0 -> mean fallback (=1)
        out = median_norm(x)
        assert np.allclose(out, x / 1.0)

    def test_degenerate_returns_copy(self):
        x = np.array([-1.0, 0.0, 1.0])  # median 0, mean 0
        out = median_norm(x)
        assert np.array_equal(out, x)
        assert out is not x


class TestUnitLength:
    @given(finite_series)
    @settings(max_examples=50, deadline=None)
    def test_unit_norm(self, x):
        if np.linalg.norm(x) > 1e-9:
            assert abs(np.linalg.norm(unit_length(x)) - 1.0) < 1e-9

    def test_zero_series_stays_zero(self):
        assert np.array_equal(unit_length(np.zeros(4)), np.zeros(4))


class TestAdaptiveScaling:
    def test_factor_recovers_known_scale(self):
        x = np.array([1.0, 2.0, 3.0])
        assert abs(adaptive_scaling_factor(2.0 * x, x) - 2.0) < 1e-12

    def test_pair_transform_scales_second(self):
        norm = get_normalizer("adaptive")
        x = np.array([2.0, 4.0])
        y = np.array([1.0, 2.0])
        a, b = norm.apply_pair(x, y)
        assert np.array_equal(a, x)
        assert np.allclose(b, x)

    def test_is_pairwise(self):
        assert get_normalizer("adaptive").is_pairwise

    def test_dataset_passthrough(self):
        X = np.ones((3, 4))
        assert np.array_equal(get_normalizer("adaptive").apply_dataset(X), X)

    def test_zero_reference_factor_zero(self):
        assert adaptive_scaling_factor(np.ones(3), np.zeros(3)) == 0.0


class TestActivations:
    def test_logistic_bounds(self):
        out = logistic(np.array([-1000.0, 0.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == 0.5
        assert out[2] == pytest.approx(1.0, abs=1e-12)

    @given(finite_series)
    @settings(max_examples=50, deadline=None)
    def test_logistic_in_unit_interval(self, x):
        out = logistic(x)
        assert ((out >= 0.0) & (out <= 1.0)).all()

    def test_tanh_matches_numpy(self):
        x = np.linspace(-3, 3, 11)
        assert np.allclose(tanh(x), np.tanh(x))

    @given(finite_series)
    @settings(max_examples=50, deadline=None)
    def test_tanh_monotone(self, x):
        xs = np.sort(x)
        out = tanh(xs)
        assert (np.diff(out) >= -1e-12).all()


class TestNormalizeEntryPoint:
    def test_default_is_zscore(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(normalize(x), zscore(x))

    @pytest.mark.parametrize("name", PAPER_NORMALIZATIONS)
    def test_all_methods_return_same_length(self, name):
        x = np.linspace(-1, 1, 17)
        assert normalize(x, name).shape == x.shape


class TestMinMaxRangeFactory:
    def test_custom_range_applied(self):
        from repro.normalization import make_minmax_range

        norm = make_minmax_range(0.1, 1.0)
        out = norm(np.array([3.0, 5.0, 7.0]))
        assert out.min() == pytest.approx(0.1)
        assert out.max() == pytest.approx(1.0)

    def test_strictly_positive_for_probability_measures(self):
        from repro.normalization import make_minmax_range

        norm = make_minmax_range(0.1, 1.0)
        out = norm(np.linspace(-5, 5, 20))
        assert (out > 0).all()

    def test_registrable(self):
        from repro.normalization import (
            get_normalizer,
            make_minmax_range,
            register_normalizer,
        )
        from repro.normalization import base as norm_base

        snapshot = dict(norm_base._REGISTRY)
        try:
            register_normalizer(make_minmax_range(-1.0, 1.0))
            assert get_normalizer("minmax[-1,1]").label == "MinMax[-1,1]"
        finally:
            # Restore the global registry so census/catalog tests keep
            # seeing exactly the paper's 8 methods.
            norm_base._REGISTRY.clear()
            norm_base._REGISTRY.update(snapshot)

    def test_invalid_range_rejected(self):
        from repro.normalization import make_minmax_range

        with pytest.raises(ValueError):
            make_minmax_range(1.0, 1.0)
