"""Tests for the tiered implementation-backend registry.

Covers the redesigned backend-aware API end to end:

- **parity**: the compiled-tier kernels agree with the reference
  recurrences across the Table 4 parameter grids — bitwise for the
  elastic four (DTW, MSM, TWE, ERP), to 1e-9 relative for the exp/log
  kernel measures (GAK, KDTW) — on random, constant, extreme and
  unequal-length inputs. Without numba the kernels run as plain Python
  (the ``_jit`` shim), so the parity suite is meaningful on every
  machine; on the numba CI leg the same tests gate the JIT output.
- **selection**: ``backend="auto"|"compiled"|"reference"`` semantics,
  the single-per-process :class:`BackendFallbackWarning`, the
  :class:`BackendUnavailableError` contract of explicit ``"compiled"``,
  and the ambient :func:`use_backend` policy (``SweepConfig.backend``).
- **surfaces**: ``describe_measure`` payload, ``repro backends`` CLI,
  span ``backend`` attributes, and the serving-artifact ``backend``
  manifest field with the engine's mismatch warning.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classification import dissimilarity_matrix
from repro.cli import main as cli_main
from repro.datasets import default_archive
from repro.distances import (
    BACKEND_POLICIES,
    BackendFallbackWarning,
    BackendMismatchWarning,
    compiled_measures,
    default_backend,
    describe_measure,
    distance,
    get_measure,
    measure_backends,
    numba_status,
    reset_backends,
    resolve_backend,
    use_backend,
    warm_backends,
)
from repro.distances._compiled import elastic as _compiled_elastic
from repro.distances._compiled import kernels as _compiled_kernels
from repro.distances.backends import active_backend
from repro.evaluation import MeasureVariant, run_sweep
from repro.evaluation.engine.config import SweepConfig
from repro.exceptions import (
    BackendUnavailableError,
    EvaluationError,
    ParameterError,
)
from repro.observability import Recorder, get_bus
from repro.serving import ModelArtifact, QueryEngine

#: Module holding each measure's compiled kernel pair.
_KERNEL_MODULES = {
    "dtw": _compiled_elastic,
    "msm": _compiled_elastic,
    "twe": _compiled_elastic,
    "erp": _compiled_elastic,
    "gak": _compiled_kernels,
    "kdtw": _compiled_kernels,
}

#: Tiers agree bitwise for these (IEEE-exact ops only); the kernel
#: measures go through exp/log where libm rounding may differ.
BITWISE = {"dtw", "msm", "twe", "erp"}


def _kernels(name):
    module = _KERNEL_MODULES[name]
    return getattr(module, f"{name}_pair"), getattr(module, f"{name}_matrix")


def _grid_cases(name):
    """Default params plus the low/high Table 4 grid corner per knob."""
    measure = get_measure(name)
    defaults = {spec.name: spec.default for spec in measure.params}
    cases = [defaults]
    for spec in measure.params:
        for value in (spec.grid[0], spec.grid[-1]):
            cases.append({**defaults, spec.name: value})
    return cases


def _assert_parity(name, got, want):
    if name in BITWISE:
        np.testing.assert_array_equal(got, want)
    else:
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)


@pytest.fixture()
def no_numba(monkeypatch):
    """Hide numba (even when installed) and re-arm the fallback warning."""
    monkeypatch.setitem(sys.modules, "numba", None)
    reset_backends()
    yield
    monkeypatch.undo()
    reset_backends()


@pytest.fixture(scope="module")
def serving_dataset():
    return default_archive(n_datasets=4, size_scale=0.4, seed=3).subset(1)[0]


# ----------------------------------------------------------------------
# parity: compiled kernels vs reference recurrences
# ----------------------------------------------------------------------
class TestKernelParity:
    @pytest.mark.parametrize("name", sorted(_KERNEL_MODULES))
    def test_pair_parity_across_table4_grid(self, name, random_pairs):
        measure = get_measure(name)
        pair, _ = _kernels(name)
        for params in _grid_cases(name):
            for x, y in random_pairs[:4]:
                _assert_parity(
                    name,
                    float(pair(x, y, **params)),
                    measure(x, y, backend="reference", **params),
                )

    @pytest.mark.parametrize("name", sorted(_KERNEL_MODULES))
    def test_matrix_parity_across_table4_grid(self, name):
        measure = get_measure(name)
        _, matrix = _kernels(name)
        rng = np.random.default_rng(20200607)
        X = rng.standard_normal((4, 23))
        Y = rng.standard_normal((3, 23))
        for params in _grid_cases(name):
            _assert_parity(
                name,
                matrix(X, Y, **params),
                measure.pairwise(X, Y, backend="reference", **params),
            )

    @pytest.mark.parametrize("name", sorted(_KERNEL_MODULES))
    def test_self_matrix_parity(self, name):
        measure = get_measure(name)
        _, matrix = _kernels(name)
        rng = np.random.default_rng(11)
        X = rng.standard_normal((5, 17))
        _assert_parity(
            name, matrix(X, X), measure.pairwise(X, backend="reference")
        )

    @pytest.mark.parametrize("name", sorted(_KERNEL_MODULES))
    def test_unequal_length_parity(self, name):
        measure = get_measure(name)
        pair, _ = _kernels(name)
        rng = np.random.default_rng(5)
        x, y = rng.standard_normal(19), rng.standard_normal(28)
        _assert_parity(
            name, float(pair(x, y)), measure(x, y, backend="reference")
        )

    @pytest.mark.parametrize("name", sorted(_KERNEL_MODULES))
    def test_degenerate_inputs_parity(self, name):
        """Constant, zero and large-magnitude series (GAK/KDTW rescale path)."""
        measure = get_measure(name)
        pair, _ = _kernels(name)
        cases = [
            (np.zeros(12), np.zeros(12)),
            (np.full(10, 3.5), np.full(10, -2.25)),
            (np.linspace(-50.0, 50.0, 40), np.linspace(50.0, -50.0, 40)),
            (np.full(30, 1e3), np.full(30, -1e3)),
        ]
        for x, y in cases:
            _assert_parity(
                name, float(pair(x, y)), measure(x, y, backend="reference")
            )

    @pytest.mark.parametrize("name", sorted(BITWISE))
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_hypothesis_pair_parity(self, name, data):
        series = st.lists(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=24,
        )
        x = np.asarray(data.draw(series), dtype=np.float64)
        y = np.asarray(data.draw(series), dtype=np.float64)
        measure = get_measure(name)
        pair, _ = _kernels(name)
        assert float(pair(x, y)) == measure(x, y, backend="reference")

    @pytest.mark.parametrize("name", ["gak", "kdtw"])
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_hypothesis_kernel_parity(self, name, data):
        series = st.lists(
            st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=20,
        )
        x = np.asarray(data.draw(series), dtype=np.float64)
        y = np.asarray(data.draw(series), dtype=np.float64)
        measure = get_measure(name)
        pair, _ = _kernels(name)
        np.testing.assert_allclose(
            float(pair(x, y)),
            measure(x, y, backend="reference"),
            rtol=1e-9,
            atol=1e-12,
        )


# ----------------------------------------------------------------------
# selection: policies, fallback, errors
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_policies_and_registry_contents(self):
        assert BACKEND_POLICIES == ("auto", "compiled", "reference")
        assert compiled_measures() == ["dtw", "erp", "gak", "kdtw", "msm", "twe"]

    def test_reference_forced_everywhere(self, sine_pair):
        x, y = sine_pair
        measure = get_measure("msm")
        assert resolve_backend(measure, "reference").name == "reference"
        assert active_backend("msm", "reference") == "reference"
        d = distance(x, y, "msm", backend="reference")
        assert d == measure(x, y, backend="reference")

    def test_auto_matches_reference_values(self, sine_pair):
        """Whatever tier auto picks, the numbers match the reference tier."""
        x, y = sine_pair
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", BackendFallbackWarning)
            for name in compiled_measures():
                auto = distance(x, y, name)
                ref = distance(x, y, name, backend="reference")
                _assert_parity(name, auto, ref)

    def test_auto_fallback_warns_once_per_process(self, no_numba, sine_pair):
        x, y = sine_pair
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = distance(x, y, "msm")
            second = distance(x, y, "dtw")
        fallbacks = [
            w for w in caught if issubclass(w.category, BackendFallbackWarning)
        ]
        assert len(fallbacks) == 1
        assert "reference" in str(fallbacks[0].message)
        assert first == distance(x, y, "msm", backend="reference")
        assert second == distance(x, y, "dtw", backend="reference")

    def test_explicit_compiled_raises_without_numba(self, no_numba, sine_pair):
        x, y = sine_pair
        with pytest.raises(BackendUnavailableError, match="dtw"):
            distance(x, y, "dtw", backend="compiled")
        with pytest.raises(BackendUnavailableError):
            get_measure("msm").pairwise(
                np.vstack([x]), np.vstack([y]), backend="compiled"
            )

    def test_compiled_rejected_for_unregistered_measure(self, sine_pair):
        x, y = sine_pair
        with pytest.raises(BackendUnavailableError, match="euclidean"):
            distance(x, y, "euclidean", backend="compiled")

    def test_invalid_policy_rejected(self, sine_pair):
        x, y = sine_pair
        with pytest.raises(ParameterError, match="backend"):
            distance(x, y, "msm", backend="fast")

    @pytest.mark.skipif(
        not numba_status()[0], reason="numba not installed here"
    )
    def test_auto_prefers_compiled_when_available(self):
        assert resolve_backend(get_measure("msm")).name == "compiled"
        assert active_backend("msm") == "compiled"
        assert measure_backends("msm")["compiled"]["state"] == "warm"


class TestAmbientPolicy:
    def test_use_backend_scopes_and_restores(self):
        assert default_backend() == "auto"
        with use_backend("reference"):
            assert default_backend() == "reference"
            assert active_backend("dtw") == "reference"
            with use_backend("compiled"):
                assert default_backend() == "compiled"
            assert default_backend() == "reference"
        assert default_backend() == "auto"

    def test_use_backend_validates(self):
        with pytest.raises(ParameterError):
            with use_backend("jit"):
                pass  # pragma: no cover - never reached

    def test_sweep_config_validates_backend(self):
        assert SweepConfig(backend="reference").backend == "reference"
        with pytest.raises(EvaluationError, match="backend"):
            SweepConfig(backend="fast")

    def test_run_sweep_threads_backend_into_cell_spans(self, tiny_archive):
        recorder = Recorder()
        dataset = tiny_archive.subset(1)[0]
        with get_bus().sink(recorder):
            run_sweep(
                [MeasureVariant("msm")], [dataset], backend="reference"
            )
        (cell,) = recorder.spans("sweep.cell")
        assert cell.attrs["backend"] == "reference"


# ----------------------------------------------------------------------
# introspection and warming
# ----------------------------------------------------------------------
class TestIntrospection:
    def test_measure_backends_shape(self):
        tiers = measure_backends("msm")
        assert tiers["reference"] == {
            "available": True,
            "state": "ready",
            "reason": "",
        }
        assert tiers["compiled"]["state"] in (
            "cold",
            "warm",
            "failed",
            "unavailable",
        )
        assert measure_backends("euclidean") == {
            "reference": {"available": True, "state": "ready", "reason": ""}
        }

    def test_describe_measure_reports_backends(self):
        info = describe_measure("msm")
        assert set(info["backends"]) == {"reference", "compiled"}
        assert info["active_backend"] in ("reference", "compiled")
        json.dumps(info)  # the CLI serializes this payload

    def test_warm_backends_rejects_unknown_measure(self):
        with pytest.raises(ParameterError, match="euclidean"):
            warm_backends(["euclidean"])

    def test_warm_backends_reports_states(self):
        states = warm_backends(["msm", "dtw"])
        assert set(states) == {"msm", "dtw"}
        assert all(s in ("warm", "cold", "failed") for s in states.values())

    def test_warm_backends_strict_raises_without_numba(self, no_numba):
        with pytest.raises(BackendUnavailableError, match="msm"):
            warm_backends(["msm"], strict=True)

    def test_numba_status_shape(self):
        available, version = numba_status()
        assert isinstance(available, bool)
        assert (version is None) == (not available)


# ----------------------------------------------------------------------
# spans and CLI surfaces
# ----------------------------------------------------------------------
class TestSurfaces:
    def test_matrix_compute_span_backend_attr(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((3, 16))
        recorder = Recorder()
        with get_bus().sink(recorder), use_backend("reference"):
            dissimilarity_matrix("msm", X)
        (span,) = recorder.spans("matrix.compute")
        assert span.attrs["backend"] == "reference"

    def test_cli_backends_table(self, capsys):
        assert cli_main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "Implementation backends" in out
        for name in compiled_measures():
            assert name in out
        assert "numba" in out

    def test_cli_evaluate_accepts_backend_flag(self, capsys):
        code = cli_main(
            [
                "evaluate",
                "euclidean",
                "--datasets",
                "1",
                "--scale",
                "0.3",
                "--backend",
                "reference",
            ]
        )
        assert code == 0
        assert "avg accuracy" in capsys.readouterr().out


# ----------------------------------------------------------------------
# serving: manifest field and mismatch warning
# ----------------------------------------------------------------------
class TestServingBackend:
    def test_fit_records_active_backend(self, serving_dataset):
        artifact = ModelArtifact.fit_dataset(
            serving_dataset, measure="msm", normalization=None
        )
        assert artifact.backend in ("reference", "compiled")
        assert artifact.describe()["backend"] == artifact.backend

    def test_manifest_roundtrip_and_backward_compat(
        self, serving_dataset, tmp_path
    ):
        artifact = ModelArtifact.fit_dataset(
            serving_dataset, measure="msm", normalization=None
        )
        artifact.save(tmp_path / "model")
        manifest_path = tmp_path / "model" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        assert manifest["backend"] == artifact.backend
        loaded = ModelArtifact.load(tmp_path / "model")
        assert loaded.backend == artifact.backend
        # Pre-backend manifests (no such key) load as "reference": the
        # field is deliberately outside the content fingerprint.
        del manifest["backend"]
        manifest_path.write_text(json.dumps(manifest))
        legacy = ModelArtifact.load(tmp_path / "model")
        assert legacy.backend == "reference"
        assert legacy.fingerprint == artifact.fingerprint

    def test_engine_warns_on_backend_mismatch(self, serving_dataset):
        artifact = ModelArtifact.fit_dataset(
            serving_dataset, measure="msm", normalization=None
        )
        mismatched = dataclasses.replace(artifact, backend="compiled")
        recorder = Recorder()
        with get_bus().sink(recorder):
            with pytest.warns(BackendMismatchWarning, match="compiled"):
                engine = QueryEngine(mismatched, backend="reference")
        assert engine.backend == "reference"
        assert recorder.counters() == {"serve.backend.mismatch": 1}

    def test_engine_quiet_when_backends_agree(self, serving_dataset):
        artifact = ModelArtifact.fit_dataset(
            serving_dataset, measure="msm", normalization=None
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine = QueryEngine(artifact)
        assert engine.backend == artifact.backend
        assert not [
            w for w in caught if issubclass(w.category, BackendMismatchWarning)
        ]

    def test_cascade_route_reports_reference(self, serving_dataset):
        """Sliding/cascade routes bypass the registry by design."""
        artifact = ModelArtifact.fit_dataset(
            serving_dataset,
            measure="dtw",
            normalization="zscore",
            params={"delta": 10.0},
        )
        engine = QueryEngine(artifact)
        assert engine.route == "cascade"
        assert engine.backend == "reference"
