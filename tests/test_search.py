"""Tests for the subsequence-search substrate (MASS, matrix profile)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.search import (
    best_match,
    clamped_window_stats,
    mass,
    matrix_profile,
    rolling_mean_std,
    sliding_dot_product,
    top_k_matches,
)


@pytest.fixture(scope="module")
def long_series(rng):
    """A noisy sine with a known planted pattern and one anomaly."""
    t = np.linspace(0, 12 * np.pi, 600)
    base = np.sin(t) + rng.normal(0, 0.05, size=600)
    pattern = np.concatenate([np.linspace(0, 3, 15), np.linspace(3, -1, 15)])
    series = base.copy()
    series[100:130] += pattern
    series[400:430] += pattern  # the repeated motif
    series[250:260] += 4.0  # the anomaly (discord)
    return series, pattern


class TestSlidingDotProduct:
    def test_matches_naive(self, rng):
        q = rng.normal(size=8)
        t = rng.normal(size=50)
        qt = sliding_dot_product(q, t)
        naive = np.array(
            [float(np.dot(q, t[i : i + 8])) for i in range(50 - 8 + 1)]
        )
        assert np.allclose(qt, naive, atol=1e-8)

    def test_query_longer_than_series_rejected(self):
        with pytest.raises(ValidationError):
            sliding_dot_product(np.ones(10), np.ones(5))


class TestRollingStats:
    def test_matches_naive(self, rng):
        t = rng.normal(size=40)
        mean, std = rolling_mean_std(t, 7)
        for i in range(40 - 7 + 1):
            window = t[i : i + 7]
            assert mean[i] == pytest.approx(window.mean())
            assert std[i] == pytest.approx(window.std(), abs=1e-9)

    def test_bad_window_rejected(self):
        with pytest.raises(ValidationError):
            rolling_mean_std(np.ones(5), 0)
        with pytest.raises(ValidationError):
            rolling_mean_std(np.ones(5), 6)

    def test_large_offset_constant_ish_series_clamped(self):
        # Regression: a huge offset with a tiny spread makes
        # sum(x^2)/w - mean^2 cancel catastrophically; the raw
        # subtraction can land a few ulps below zero and sqrt would
        # return NaN without the clamp.
        series = 1e8 + 1e-6 * np.sin(np.linspace(0.0, 4.0, 64))
        mean, std = rolling_mean_std(series, 12)
        assert np.isfinite(std).all()
        assert (std >= 0.0).all()
        assert np.allclose(mean, 1e8)
        # Exactly constant at a huge offset: std must be exactly 0.
        _, std0 = rolling_mean_std(np.full(32, 1e8), 8)
        assert (std0 == 0.0).all()

    def test_clamped_window_stats_guard(self):
        # Totals crafted so sums2/w - mean^2 is a hair negative.
        mean, std = clamped_window_stats(
            np.array([4.0]), np.array([4.0 - 1e-12]), 4
        )
        assert std[0] == 0.0
        assert mean[0] == 1.0

    def test_streaming_state_shares_the_guard(self):
        # The incremental stats must agree bitwise with the batch path
        # on the same pathological input (shared clamp, shared sums).
        from repro.streaming import StreamState

        series = 1e8 + 1e-6 * np.sin(np.linspace(0.0, 4.0, 64))
        state = StreamState(window=12)
        state.append(series)
        mean, std = rolling_mean_std(series, 12)
        assert np.array_equal(state.window_means, mean)
        assert np.array_equal(state.window_stds, std)


class TestMassStatsReuse:
    def test_precomputed_stats_identical_result(self, rng):
        q = rng.normal(size=12)
        t = rng.normal(size=90)
        assert np.array_equal(
            mass(q, t), mass(q, t, stats=rolling_mean_std(t, 12))
        )

    def test_wrong_length_stats_rejected(self, rng):
        q = rng.normal(size=12)
        t = rng.normal(size=90)
        means, stds = rolling_mean_std(t, 11)  # 80 entries, need 79
        with pytest.raises(ValidationError):
            mass(q, t, stats=(means, stds))


class TestDeterministicTieBreaking:
    def test_best_match_lowest_offset_wins_on_exact_tie(self):
        # A constant query over a constant series ties every offset at
        # exactly 0.0; argmin first-occurrence must pick offset 0.
        idx, dist = best_match(np.full(4, 7.0), np.zeros(16))
        assert idx == 0
        assert dist == 0.0

    def test_top_k_lowest_offsets_under_exclusion_on_ties(self):
        # All-tied profile (constant query/series): each selection round
        # takes the lowest surviving offset; the default exclusion
        # radius (q//2 = 2) then blanks idx..idx+2 each side.
        hits = top_k_matches(np.full(4, 1.0), np.zeros(12), k=3)
        assert [idx for idx, _ in hits] == [0, 3, 6]
        assert all(dist == 0.0 for _, dist in hits)

    def test_repeated_runs_identical(self, long_series):
        series, pattern = long_series
        assert best_match(pattern, series) == best_match(pattern, series)
        assert top_k_matches(pattern, series, k=3) == top_k_matches(
            pattern, series, k=3
        )


class TestMASS:
    def test_profile_length(self, rng):
        q, t = rng.normal(size=10), rng.normal(size=100)
        assert mass(q, t).shape == (91,)

    def test_matches_naive_znormalized_ed(self, rng):
        from repro.normalization import zscore

        q = rng.normal(size=9)
        t = rng.normal(size=60)
        profile = mass(q, t)
        qz = zscore(q)
        for i in range(0, 52, 7):
            wz = zscore(t[i : i + 9])
            assert profile[i] == pytest.approx(
                float(np.linalg.norm(qz - wz)), abs=1e-6
            )

    def test_exact_occurrence_found(self, long_series):
        series, pattern = long_series
        idx, dist = best_match(pattern, series[80:160])
        # Pattern planted at offset 100 in the original (offset 20 here);
        # the sine background can shift the optimum by a sample.
        assert abs(idx - 20) <= 2
        assert dist < 1.5  # noise + sine background perturb it slightly

    def test_scale_invariance(self, rng):
        q = rng.normal(size=12)
        t = rng.normal(size=80)
        assert np.allclose(mass(q, t), mass(3.0 * q + 5.0, t), atol=1e-6)

    def test_profile_bounded(self, rng):
        q = rng.normal(size=12)
        t = rng.normal(size=80)
        profile = mass(q, t)
        assert (profile >= -1e-9).all()
        # d^2 = 2q(1 - corr) with corr in [-1, 1]: max is sqrt(4q)
        # (anti-correlated window), not sqrt(2q).
        assert (profile <= np.sqrt(4 * 12) + 1e-6).all()

    def test_constant_query_matches_constant_windows(self):
        t = np.concatenate([np.zeros(20), np.sin(np.linspace(0, 6, 30))])
        profile = mass(np.full(5, 2.0), t)
        assert profile[0] == 0.0
        assert profile[-1] > 0.0

    def test_flat_windows_max_distance_vs_shaped_query(self):
        t = np.concatenate([np.full(20, 3.0), np.sin(np.linspace(0, 6, 30))])
        profile = mass(np.sin(np.linspace(0, 3, 5)), t)
        assert profile[0] == pytest.approx(np.sqrt(10))


class TestTopKMatches:
    def test_finds_both_planted_occurrences(self, long_series):
        series, pattern = long_series
        hits = top_k_matches(pattern, series, k=2)
        offsets = sorted(idx for idx, _ in hits)
        assert abs(offsets[0] - 100) <= 3
        assert abs(offsets[1] - 400) <= 3

    def test_non_overlapping(self, long_series):
        series, pattern = long_series
        hits = top_k_matches(pattern, series, k=3)
        offsets = sorted(idx for idx, _ in hits)
        for a, b in zip(offsets, offsets[1:]):
            assert b - a >= len(pattern) // 2


class TestMatrixProfile:
    def test_motif_finds_planted_repeat(self, long_series):
        # The two pattern copies sit 300 samples apart (an exact multiple
        # of the background sine's period, so neighboring offsets are
        # equally valid motif anchors).
        series, pattern = long_series
        mp = matrix_profile(series, window=30)
        a, b, dist = mp.motif()
        offsets = sorted((a, b))
        assert abs((offsets[1] - offsets[0]) - 300) <= 5
        assert abs(offsets[0] - 100) <= 15
        assert dist < 2.0

    def test_discord_finds_anomaly(self, long_series):
        series, _ = long_series
        mp = matrix_profile(series, window=30)
        (idx, _), = mp.discords(1)
        assert 220 <= idx <= 280  # the +4 bump planted at 250..260

    def test_profile_shape(self):
        t = np.sin(np.linspace(0, 8 * np.pi, 120))
        mp = matrix_profile(t, window=20)
        assert mp.profile.shape == (101,)
        assert mp.indices.shape == (101,)

    def test_periodic_signal_all_low(self):
        t = np.sin(np.linspace(0, 16 * np.pi, 300))
        mp = matrix_profile(t, window=30)
        assert float(np.median(mp.profile)) < 0.5

    def test_bad_window_rejected(self):
        with pytest.raises(ValidationError):
            matrix_profile(np.ones(20), window=15)
