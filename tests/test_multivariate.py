"""Tests for the multivariate extensions (paper footnote 1)."""

import numpy as np
import pytest

from repro.distances.elastic import dtw, msm
from repro.distances.multivariate import (
    cross_correlation_mv,
    dtw_mv,
    euclidean_mv,
    msm_mv,
    sbd_mv,
    zscore_mv,
)
from repro.distances.sliding import cross_correlation, ncc_c
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def mv_pair(rng):
    t = np.linspace(0, 4 * np.pi, 48)
    x = np.column_stack([np.sin(t), np.cos(t), np.sin(2 * t)])
    y = np.column_stack(
        [np.sin(t + 0.4), np.cos(t + 0.4), np.sin(2 * t + 0.8)]
    )
    return x, y


class TestReductionToUnivariate:
    """Single-channel multivariate must equal the univariate measures."""

    def test_euclidean(self, sine_pair):
        x, y = sine_pair
        assert euclidean_mv(x, y) == pytest.approx(float(np.linalg.norm(x - y)))

    def test_dtw_dependent(self, sine_pair):
        x, y = sine_pair
        assert dtw_mv(x, y, delta=10.0) == pytest.approx(dtw(x, y, 10.0))

    def test_dtw_independent(self, sine_pair):
        x, y = sine_pair
        assert dtw_mv(x, y, delta=10.0, strategy="independent") == pytest.approx(
            dtw(x, y, 10.0)
        )

    def test_sbd(self, sine_pair):
        x, y = sine_pair
        assert sbd_mv(x, y) == pytest.approx(ncc_c(x, y))

    def test_cross_correlation(self, sine_pair):
        x, y = sine_pair
        assert np.allclose(
            cross_correlation_mv(x, y), cross_correlation(x, y), atol=1e-8
        )

    def test_msm(self, sine_pair):
        x, y = sine_pair
        assert msm_mv(x, y, c=0.5) == pytest.approx(msm(x, y, 0.5))


class TestMultivariateContracts:
    def test_identity_zero(self, mv_pair):
        x, _ = mv_pair
        assert euclidean_mv(x, x) == 0.0
        assert dtw_mv(x, x) == 0.0
        assert sbd_mv(x, x) == pytest.approx(0.0, abs=1e-9)
        assert msm_mv(x, x) == 0.0

    def test_symmetry(self, mv_pair):
        x, y = mv_pair
        assert dtw_mv(x, y) == pytest.approx(dtw_mv(y, x))
        assert sbd_mv(x, y) == pytest.approx(sbd_mv(y, x), abs=1e-9)

    def test_dependent_vs_independent_differ_in_general(self, mv_pair):
        x, y = mv_pair
        # Shift channel 2 of y only: independent can align it separately.
        y_mod = y.copy()
        y_mod[:, 2] = np.roll(y_mod[:, 2], 6)
        dep = dtw_mv(x, y_mod, delta=20.0)
        indep = dtw_mv(x, y_mod, delta=20.0, strategy="independent")
        assert dep != pytest.approx(indep)

    def test_dependent_dtw_leq_frobenius_ed(self, mv_pair):
        x, y = mv_pair
        assert dtw_mv(x, y, delta=100.0) <= euclidean_mv(x, y) + 1e-9

    def test_joint_shift_invariance_of_sbd(self, rng):
        base = np.zeros((60, 2))
        base[20:40, 0] = rng.normal(size=20)
        base[20:40, 1] = rng.normal(size=20)
        shifted = np.roll(base, 7, axis=0)
        assert sbd_mv(base, shifted) == pytest.approx(0.0, abs=1e-9)

    def test_channel_mismatch_rejected(self, mv_pair):
        x, _ = mv_pair
        with pytest.raises(ValidationError, match="channel"):
            dtw_mv(x, x[:, :2])

    def test_bad_strategy_rejected(self, mv_pair):
        x, y = mv_pair
        with pytest.raises(ValidationError):
            dtw_mv(x, y, strategy="bogus")
        with pytest.raises(ValidationError):
            msm_mv(x, y, strategy="dependent")

    def test_nan_rejected(self):
        bad = np.ones((5, 2))
        bad[2, 1] = np.nan
        with pytest.raises(ValidationError):
            euclidean_mv(bad, np.ones((5, 2)))


class TestZScoreMV:
    def test_per_channel_standardization(self, mv_pair):
        x, _ = mv_pair
        z = zscore_mv(3.0 * x + 2.0)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_channel_zeroed(self):
        x = np.column_stack([np.arange(5.0), np.full(5, 3.0)])
        z = zscore_mv(x)
        assert np.allclose(z[:, 1], 0.0)
        assert np.allclose(z[:, 0].std(), 1.0)
