"""Tests for metrics aggregation, resource tracking, and the bench gate."""

import json
import threading
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.exceptions import TraceError
from repro.observability import (
    Aggregate,
    Event,
    EventBus,
    MetricsSink,
    Recorder,
    ResourceSampler,
    attribute_samples,
    build_span_tree,
    critical_path,
)
from repro.observability.bench import (
    SCHEMA,
    build_workloads,
    compare_bench,
    load_bench,
    run_bench,
)
from repro.reporting import format_critical_path


@pytest.fixture()
def bus():
    return EventBus()


class TestAggregate:
    def test_exact_fields(self):
        agg = Aggregate()
        for v in (1.0, 2.0, 4.0, 0.5):
            agg.record(v)
        assert agg.count == 4
        assert agg.sum == pytest.approx(7.5)
        assert agg.min == 0.5
        assert agg.max == 4.0
        assert agg.mean == pytest.approx(1.875)

    def test_quantiles_bounded_error(self):
        gen = np.random.default_rng(99)
        values = np.exp(gen.normal(size=4000))  # lognormal latencies
        agg = Aggregate()
        for v in values:
            agg.record(float(v))
        for q in (0.50, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            # log-spaced buckets promise ~4.5% worst-case error
            assert agg.quantile(q) == pytest.approx(exact, rel=0.06)
        assert agg.p50 <= agg.p95 <= agg.p99 <= agg.max

    def test_quantiles_clamped_to_range(self):
        agg = Aggregate()
        agg.record(3.0)
        assert agg.p50 == agg.p99 == 3.0

    def test_zero_and_negative_values(self):
        agg = Aggregate()
        for v in (0.0, -1.0, 2.0):
            agg.record(v)
        assert agg.min == -1.0 and agg.max == 2.0
        assert agg.quantile(0.0) == -1.0  # clamped to observed min
        assert agg.count == 3

    def test_empty_aggregate(self):
        agg = Aggregate()
        assert agg.count == 0
        assert agg.mean == 0.0
        assert agg.p95 == 0.0
        assert agg.to_dict()["min"] == 0.0

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError, match="quantile"):
            Aggregate().quantile(1.5)

    def test_merge_is_lossless(self):
        gen = np.random.default_rng(7)
        values = [float(v) for v in np.exp(gen.normal(size=500))]
        whole = Aggregate()
        for v in values:
            whole.record(v)
        merged = Aggregate()
        for chunk in (values[:100], values[100:137], values[137:]):
            part = Aggregate()
            for v in chunk:
                part.record(v)
            merged.merge(part)
        assert merged == whole
        assert merged.quantile(0.95) == whole.quantile(0.95)

    def test_dict_roundtrip_preserves_merge(self):
        agg = Aggregate()
        for v in (0.1, 0.2, 0.9, 5.0):
            agg.record(v)
        restored = Aggregate.from_dict(
            json.loads(json.dumps(agg.to_dict()))
        )
        assert restored == agg


class TestMetricsSink:
    def test_groups_spans_by_attrs(self, bus):
        sink = bus.attach(MetricsSink())
        with bus.span("sweep.cell", variant="ED", dataset="A", family="minkowski"):
            pass
        with bus.span("sweep.cell", variant="ED", dataset="B", family="minkowski"):
            pass
        assert len(sink) == 2
        agg = sink.get("sweep.cell", variant="ED", dataset="A", family="minkowski")
        assert agg is not None and agg.count == 1

    def test_grouping_ignores_unlisted_attrs(self, bus):
        sink = bus.attach(MetricsSink(group_by=("family",)))
        bus.emit_span("work", 0.1, family="elastic", dataset="A")
        bus.emit_span("work", 0.2, family="elastic", dataset="B")
        agg = sink.get("work", family="elastic")
        assert agg.count == 2

    def test_counters_and_samples_recorded(self, bus):
        sink = bus.attach(MetricsSink())
        bus.count("cache.hit", 3)
        bus.sample("resource.rss_bytes", 1024.0)
        assert sink.get("cache.hit").sum == 3
        assert sink.get("resource.rss_bytes").max == 1024.0

    def test_names_filter(self, bus):
        sink = bus.attach(MetricsSink(names=("keep",)))
        bus.emit_span("keep", 0.1)
        bus.emit_span("drop", 0.1)
        assert sink.get("keep") is not None
        assert sink.get("drop") is None

    def test_handle_never_raises(self, bus):
        sink = bus.attach(MetricsSink())
        sink.handle(Event("span", "weird", duration_seconds="not-a-number"))
        sink.handle(Event("unknown-kind", "x"))
        sink.handle(Event("counter", "c"))  # value None -> skipped
        assert len(sink) == 0

    def test_merge_equals_concatenated_stream(self, bus):
        events = [
            Event("span", "work", {"family": f}, d)
            for f, d in zip("abcabcab", (0.1, 0.2, 0.3) * 3)
        ]
        whole = MetricsSink()
        for e in events:
            whole.handle(e)
        merged = MetricsSink()
        for chunk in (events[:3], events[3:4], events[4:]):
            part = MetricsSink()
            for e in chunk:
                part.handle(e)
            merged.merge(part)
        assert merged.aggregates() == whole.aggregates()

    def test_to_from_dicts_roundtrip(self):
        sink = MetricsSink()
        sink.handle(Event("span", "work", {"family": "elastic"}, 0.25))
        sink.handle(Event("span", "work", {"family": "elastic"}, 0.5))
        restored = MetricsSink.from_dicts(
            json.loads(json.dumps(sink.to_dicts()))
        )
        assert restored.aggregates() == sink.aggregates()
        # a restored sink merges cleanly back into a live one
        live = MetricsSink()
        live.handle(Event("span", "work", {"family": "elastic"}, 1.0))
        live.merge(restored)
        assert live.get("work", family="elastic").count == 3

    def test_concurrent_recording(self, bus):
        sink = bus.attach(MetricsSink(group_by=()))
        n_threads, per_thread = 8, 200

        def worker():
            for _ in range(per_thread):
                sink.handle(Event("span", "work", {}, 0.001))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sink.get("work").count == n_threads * per_thread


class TestResourceSampler:
    def test_peaks_and_events(self, bus):
        recorder = bus.attach(Recorder())
        sampler = ResourceSampler(interval=0.01, bus=bus)
        with sampler:
            with bus.span("work"):
                ballast = np.zeros(2_000_000)  # ~16 MB
                time.sleep(0.04)
                del ballast
        stats = sampler.stats
        assert stats.n_samples >= 2
        assert stats.peak_rss_bytes > 0
        samples = [e for e in recorder.events if e.kind == "sample"]
        assert samples and all(
            e.name == "resource.rss_bytes" for e in samples
        )
        # at least one reading was taken inside the span and tagged
        attributed = attribute_samples(recorder.events)
        assert "work" in attributed["resource.rss_bytes"]

    def test_tracemalloc_peak(self, bus):
        sampler = ResourceSampler(
            interval=0.005, bus=bus, trace_python_allocations=True
        )
        with sampler:
            ballast = [bytes(1000) for _ in range(2000)]
            time.sleep(0.02)
            del ballast
        assert sampler.stats.tracemalloc_peak_bytes > 0

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="interval"):
            ResourceSampler(interval=0.0)

    def test_stop_is_idempotent(self, bus):
        sampler = ResourceSampler(interval=0.01, bus=bus).start()
        first = sampler.stop()
        second = sampler.stop()
        assert first.n_samples == second.n_samples >= 2


class TestSpanTree:
    def _trace(self, bus):
        recorder = bus.attach(Recorder())
        with bus.span("sweep"):
            with bus.span("sweep.variant", variant="ED"):
                with bus.span("sweep.cell", variant="ED", dataset="A"):
                    time.sleep(0.002)
                with bus.span("sweep.cell", variant="ED", dataset="B"):
                    pass
        return recorder.events

    def test_build_span_tree(self, bus):
        events = self._trace(bus)
        (root,) = build_span_tree(events)
        assert root.name == "sweep"
        (variant,) = root.children
        assert variant.name == "sweep.variant"
        assert [c.event.attrs["dataset"] for c in variant.children] == ["A", "B"]
        assert root.self_seconds <= root.duration_seconds

    def test_critical_path_descends_heaviest_child(self, bus):
        events = self._trace(bus)
        path = critical_path(events)
        assert [n.name for n in path] == ["sweep", "sweep.variant", "sweep.cell"]
        assert path[-1].event.attrs["dataset"] == "A"  # the slept cell

    def test_idless_events_have_no_critical_path(self):
        events = [Event("span", "legacy", {}, 1.0)]
        assert critical_path(events) == []
        assert format_critical_path(events) == ""

    def test_truncated_trace_orphans_become_roots(self, bus):
        events = self._trace(bus)
        # drop the root span (killed-run truncation leaves children only)
        orphaned = [e for e in events if e.name != "sweep"]
        roots = build_span_tree(orphaned)
        assert [r.name for r in roots] == ["sweep.variant"]

    def test_format_critical_path(self, bus):
        events = self._trace(bus)
        text = format_critical_path(events)
        assert text.splitlines()[0] == "Critical path"
        assert "sweep.cell [ED on A]" in text
        assert "of parent" in text and "self" in text


@pytest.fixture(scope="module")
def bench_record(tmp_path_factory):
    """One quick single-repeat bench run shared by the gate tests."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_sweep.json"
    record = run_bench(out=out, quick=True, repeats=1)
    return out, record


class TestBench:
    def test_record_schema(self, bench_record):
        out, record = bench_record
        assert record["schema"] == SCHEMA
        assert record["workload"] == "quick"
        assert set(record["families"]) == {
            "lockstep", "sliding", "elastic", "kernel", "elastic_kernels",
            "cache", "sweep", "checkpoint", "serving", "index", "telemetry",
            "streaming",
        }
        for payload in record["families"].values():
            latency = payload["latency_seconds"]
            assert latency["count"] == 1
            assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
            assert payload["peak_rss_bytes"] > 0
        # the persisted file parses back identically
        assert load_bench(out) == json.loads(out.read_text())

    def test_compare_self_is_clean(self, bench_record):
        out, _ = bench_record
        code, lines = compare_bench(out, out, threshold_pct=20.0)
        assert code == 0
        assert any("no regressions" in line for line in lines)

    def test_compare_flags_inflated_run(self, bench_record):
        _, record = bench_record
        inflated = json.loads(json.dumps(record))
        for family in inflated["families"].values():
            family["latency_seconds"]["p95"] *= 10
            family["peak_rss_bytes"] *= 10
        code, lines = compare_bench(record, inflated, threshold_pct=20.0)
        assert code == 1
        assert any("REGRESSION" in line for line in lines)

    def test_compare_improvement_is_clean(self, bench_record):
        _, record = bench_record
        improved = json.loads(json.dumps(record))
        for family in improved["families"].values():
            family["latency_seconds"]["p95"] /= 10
            family["peak_rss_bytes"] //= 2
        code, _ = compare_bench(record, improved, threshold_pct=20.0)
        assert code == 0

    def test_compare_missing_family_is_soft(self, bench_record):
        _, record = bench_record
        partial = json.loads(json.dumps(record))
        del partial["families"]["kernel"]
        code, lines = compare_bench(record, partial, threshold_pct=20.0)
        assert code == 0
        assert any("MISSING" in line for line in lines)

    def test_small_absolute_jitter_is_absorbed(self, bench_record):
        _, record = bench_record
        jittered = json.loads(json.dumps(record))
        for family in jittered["families"].values():
            # huge relative but tiny absolute change: under the floors
            family["latency_seconds"]["p95"] += 4e-5
            family["peak_rss_bytes"] += 1 << 20
        code, _ = compare_bench(record, jittered, threshold_pct=1e-9)
        assert code == 0

    def test_load_bench_rejects_garbage(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_bench(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(TraceError, match="malformed"):
            load_bench(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"schema": "other/9", "families": {}}')
        with pytest.raises(TraceError, match="schema"):
            load_bench(wrong)

    def test_workloads_cover_families(self):
        workloads = build_workloads(quick=True)
        assert set(workloads) == {
            "lockstep", "sliding", "elastic", "kernel", "elastic_kernels",
            "cache", "sweep", "checkpoint", "serving", "index", "telemetry",
            "streaming",
        }

    def test_cli_bench_run_and_compare(self, bench_record, tmp_path, capsys):
        out, record = bench_record
        code = cli_main(
            ["bench", "compare", str(out), str(out), "--threshold", "20"]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out
        inflated_path = tmp_path / "inflated.json"
        inflated = json.loads(json.dumps(record))
        for family in inflated["families"].values():
            family["latency_seconds"]["p95"] *= 10
        inflated_path.write_text(json.dumps(inflated))
        code = cli_main(
            ["bench", "compare", str(out), str(inflated_path),
             "--threshold", "20"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out
