"""Tests for the DTW lower bounds (paper Section 10 pruning substrate)."""

import numpy as np
import pytest

from repro.distances.elastic import (
    dtw,
    envelope,
    lb_keogh,
    lb_kim,
    prune_with_lb_keogh,
)


@pytest.fixture(scope="module")
def batch(rng):
    return rng.normal(size=(20, 32))


class TestLBKim:
    def test_lower_bounds_dtw(self, random_pairs):
        for x, y in random_pairs:
            assert lb_kim(x, y) <= dtw(x, y, delta=100.0) + 1e-9

    def test_zero_for_identical(self, sine_pair):
        x, _ = sine_pair
        assert lb_kim(x, x) == 0.0


class TestEnvelope:
    def test_envelope_sandwiches_series(self, sine_pair):
        x, _ = sine_pair
        upper, lower = envelope(x, delta=10.0)
        assert (lower <= x + 1e-12).all()
        assert (x <= upper + 1e-12).all()

    def test_full_window_is_global_min_max(self, sine_pair):
        x, _ = sine_pair
        upper, lower = envelope(x, delta=100.0)
        assert np.allclose(upper, x.max())
        assert np.allclose(lower, x.min())

    def test_zero_window_is_series_itself(self, sine_pair):
        x, _ = sine_pair
        upper, lower = envelope(x, delta=0.0)
        assert np.allclose(upper, x)
        assert np.allclose(lower, x)


class TestLBKeogh:
    @pytest.mark.parametrize("delta", [0.0, 5.0, 10.0, 100.0])
    def test_lower_bounds_banded_dtw(self, delta, random_pairs):
        for x, y in random_pairs:
            assert lb_keogh(x, y, delta) <= dtw(x, y, delta) + 1e-9

    def test_zero_inside_envelope(self, sine_pair):
        x, _ = sine_pair
        assert lb_keogh(x, x, delta=5.0) == 0.0

    def test_precomputed_envelope_matches(self, sine_pair):
        x, y = sine_pair
        env = envelope(y, delta=10.0)
        assert lb_keogh(x, y, 10.0, y_envelope=env) == pytest.approx(
            lb_keogh(x, y, 10.0)
        )


class TestPruning:
    def test_pruned_search_matches_exhaustive(self, batch):
        query = batch[0] + 0.1
        candidates = batch
        best_idx, best_dist, n_full = prune_with_lb_keogh(query, candidates, 10.0)
        exhaustive = [dtw(query, c, 10.0) for c in candidates]
        assert best_idx == int(np.argmin(exhaustive))
        assert best_dist == pytest.approx(min(exhaustive))
        assert 1 <= n_full <= candidates.shape[0]

    def test_pruning_actually_prunes_easy_case(self, rng):
        # One near-identical candidate among far-away ones: the bound
        # should skip most full DTW computations.
        base = np.sin(np.linspace(0, 6, 40))
        candidates = np.vstack(
            [base + 0.01] + [base + 10.0 + i for i in range(15)]
        )
        _, _, n_full = prune_with_lb_keogh(base, candidates, 10.0)
        assert n_full < candidates.shape[0]
