"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestMeasuresCommand:
    def test_lists_all_measures(self, capsys):
        code, out = run_cli(capsys, "measures")
        assert code == 0
        assert "lorentzian" in out and "nccc" in out and "kdtw" in out

    def test_category_filter(self, capsys):
        code, out = run_cli(capsys, "measures", "--category", "elastic")
        assert code == 0
        assert "(7 measures)" in out
        assert "lorentzian" not in out

    def test_family_filter(self, capsys):
        code, out = run_cli(capsys, "measures", "--family", "l1")
        assert code == 0
        assert "(6 measures)" in out


class TestNormalizationsCommand:
    def test_lists_eight(self, capsys):
        code, out = run_cli(capsys, "normalizations")
        assert code == 0
        assert out.count("\n") == 8
        assert "z-score" in out and "AdaptiveScaling" in out


class TestArchiveCommand:
    def test_describes_synthetic_archive(self, capsys, monkeypatch):
        monkeypatch.delenv("UCR_ARCHIVE_PATH", raising=False)
        code, out = run_cli(capsys, "archive", "--datasets", "4")
        assert code == 0
        assert "synthetic archive" in out
        assert out.count("train") == 4


class TestEvaluateCommand:
    def test_reports_accuracies(self, capsys, monkeypatch):
        monkeypatch.delenv("UCR_ARCHIVE_PATH", raising=False)
        code, out = run_cli(
            capsys, "evaluate", "euclidean", "nccc", "--datasets", "3"
        )
        assert code == 0
        assert "NCC_c" in out and "ED" in out


class TestEvaluateCheckpointFlags:
    def test_checkpoint_writes_journal(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("UCR_ARCHIVE_PATH", raising=False)
        checkpoint = tmp_path / "ckpt"
        code, out = run_cli(
            capsys,
            "evaluate", "euclidean", "--datasets", "2",
            "--checkpoint", str(checkpoint),
        )
        assert code == 0
        assert (checkpoint / "journal.jsonl").exists()
        assert len(list((checkpoint / "cells").glob("*.json"))) == 2

    def test_resume_replays_journal(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("UCR_ARCHIVE_PATH", raising=False)
        checkpoint = tmp_path / "ckpt"
        args = (
            "evaluate", "euclidean", "--datasets", "2",
            "--checkpoint", str(checkpoint),
        )
        code, first = run_cli(capsys, *args)
        assert code == 0
        code, second = run_cli(capsys, *args, "--resume")
        assert code == 0
        assert first == second  # replayed cells give identical accuracies

    def test_second_run_without_resume_fails(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.delenv("UCR_ARCHIVE_PATH", raising=False)
        checkpoint = tmp_path / "ckpt"
        args = (
            "evaluate", "euclidean", "--datasets", "2",
            "--checkpoint", str(checkpoint),
        )
        assert run_cli(capsys, *args)[0] == 0
        with pytest.raises(Exception, match="resume=True"):
            main(list(args))

    def test_executor_and_retry_flags_accepted(self, capsys, monkeypatch):
        monkeypatch.delenv("UCR_ARCHIVE_PATH", raising=False)
        code, out = run_cli(
            capsys,
            "evaluate", "euclidean", "--datasets", "2",
            "--executor", "process", "--workers", "2",
            "--max-retries", "1", "--backoff", "0.01",
            "--cell-timeout", "30",
        )
        assert code == 0
        assert "ED" in out


class TestCompareCommand:
    def test_renders_table_and_ranks(self, capsys, monkeypatch):
        monkeypatch.delenv("UCR_ARCHIVE_PATH", raising=False)
        code, out = run_cli(
            capsys,
            "compare", "euclidean", "lorentzian",
            "--baseline", "nccc", "--datasets", "3",
        )
        assert code == 0
        assert "Measures vs NCC_c (SBD)" in out
        assert "Average ranks" in out

    def test_unknown_measure_raises(self, capsys):
        with pytest.raises(Exception):
            main(["evaluate", "not-a-measure"])
