"""Property-based oracles for the search substrate.

The pruning cascade and the matrix profile are exactness-critical: a bug
would silently change answers rather than crash. Both are checked against
brute-force oracles over randomized inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances.elastic import dtw
from repro.normalization import zscore
from repro.search import candidate_envelopes, cascade_nn_search, mass, matrix_profile


@st.composite
def corpora(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n = draw(st.integers(min_value=3, max_value=10))
    m = draw(st.integers(min_value=8, max_value=24))
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, m)), rng.normal(size=m)


class TestCascadeExactness:
    @given(corpora(), st.sampled_from([0.0, 10.0, 100.0]))
    @settings(max_examples=25, deadline=None)
    def test_cascade_equals_exhaustive(self, data, delta):
        corpus, query = data
        idx, dist, _ = cascade_nn_search(query, corpus, delta=delta)
        exhaustive = [dtw(query, c, delta) for c in corpus]
        best = min(exhaustive)
        # Ties may resolve to different-but-equidistant candidates.
        assert dist == pytest.approx(best)
        assert exhaustive[idx] == pytest.approx(best)

    @given(corpora(), st.sampled_from([0.0, 10.0, 100.0]))
    @settings(max_examples=25, deadline=None)
    def test_precomputed_envelopes_stay_exact(self, data, delta):
        """The serving path (candidate envelopes amortized across
        queries) must return the same exact nearest neighbor as the
        per-query-envelope path."""
        corpus, query = data
        envs = candidate_envelopes(corpus, delta=delta)
        assert envs.shape == (corpus.shape[0], 2, corpus.shape[1])
        idx, dist, _ = cascade_nn_search(query, corpus, delta=delta, envelopes=envs)
        exhaustive = [dtw(query, c, delta) for c in corpus]
        assert dist == pytest.approx(min(exhaustive))
        assert exhaustive[idx] == pytest.approx(min(exhaustive))

    def test_envelope_shape_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        corpus = rng.normal(size=(4, 16))
        with pytest.raises(ValueError, match="envelopes"):
            cascade_nn_search(
                rng.normal(size=16), corpus, delta=10.0,
                envelopes=np.zeros((4, 2, 8)),
            )


class TestMassOracle:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_mass_equals_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        q = rng.normal(size=7)
        t = rng.normal(size=40)
        profile = mass(q, t)
        qz = zscore(q)
        brute = np.array(
            [
                float(np.linalg.norm(qz - zscore(t[i : i + 7])))
                for i in range(40 - 7 + 1)
            ]
        )
        assert np.allclose(profile, brute, atol=1e-6)


class TestMatrixProfileOracle:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_profile_equals_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.normal(size=60)
        window = 10
        mp = matrix_profile(t, window)
        n_sub = 60 - window + 1
        exclusion = window // 2
        subs = [zscore(t[i : i + window]) for i in range(n_sub)]
        for i in range(n_sub):
            candidates = [
                float(np.linalg.norm(subs[i] - subs[j]))
                for j in range(n_sub)
                if abs(i - j) > exclusion
            ]
            assert mp.profile[i] == pytest.approx(
                min(candidates), abs=1e-6
            )
