"""Tests for the statistical machinery (paper Section 3)."""

import numpy as np
import pytest

from repro.exceptions import EvaluationError
from repro.stats import (
    average_ranks,
    critical_difference,
    friedman_test,
    nemenyi_test,
    q_critical,
    rank_matrix,
    rank_summary,
    wilcoxon_comparison,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(99)


class TestWilcoxon:
    def test_clear_improvement_detected(self, rng):
        base = rng.uniform(0.5, 0.7, size=40)
        cand = base + rng.uniform(0.02, 0.10, size=40)
        result = wilcoxon_comparison(cand, base)
        assert result.better and not result.worse
        assert result.wins == 40 and result.losses == 0
        assert result.marker == "v"

    def test_clear_degradation_detected(self, rng):
        base = rng.uniform(0.5, 0.7, size=40)
        cand = base - rng.uniform(0.02, 0.10, size=40)
        result = wilcoxon_comparison(cand, base)
        assert result.worse and not result.better
        assert result.marker == "*"

    def test_noise_not_significant(self, rng):
        base = rng.uniform(0.5, 0.7, size=40)
        cand = base + rng.normal(0.0, 0.01, size=40)
        result = wilcoxon_comparison(cand, base)
        assert not (result.better and result.worse)

    def test_identical_vectors(self):
        acc = np.full(20, 0.8)
        result = wilcoxon_comparison(acc, acc)
        assert result.p_value == 1.0
        assert result.ties == 20
        assert not result.better and not result.worse

    def test_counts_partition_datasets(self, rng):
        base = rng.uniform(0.4, 0.9, size=30)
        cand = base.copy()
        cand[:10] += 0.05
        cand[10:15] -= 0.05
        result = wilcoxon_comparison(cand, base)
        assert result.wins == 10 and result.losses == 5 and result.ties == 15

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            wilcoxon_comparison(np.ones(3), np.ones(4))

    def test_too_few_informative_datasets_is_insignificant(self):
        base = np.array([0.5, 0.5, 0.5])
        cand = np.array([0.6, 0.5, 0.5])
        result = wilcoxon_comparison(cand, base)
        assert not result.better


class TestRanking:
    def test_rank_matrix_best_gets_one(self):
        acc = np.array([[0.9, 0.5, 0.7]])
        assert rank_matrix(acc).tolist() == [[1.0, 3.0, 2.0]]

    def test_ties_get_average_rank(self):
        acc = np.array([[0.9, 0.9, 0.5]])
        assert rank_matrix(acc).tolist() == [[1.5, 1.5, 3.0]]

    def test_average_ranks_across_datasets(self):
        acc = np.array([[0.9, 0.5], [0.5, 0.9]])
        assert average_ranks(acc).tolist() == [1.5, 1.5]

    def test_rank_summary_sorted_best_first(self):
        acc = np.array([[0.2, 0.9, 0.5], [0.1, 0.8, 0.6]])
        summary = rank_summary(["a", "b", "c"], acc)
        assert summary.names == ("b", "c", "a")
        assert summary.ranks[0] == 1.0

    def test_name_count_checked(self):
        with pytest.raises(EvaluationError):
            rank_summary(["a"], np.ones((2, 2)))


class TestFriedman:
    def test_obvious_difference_significant(self, rng):
        n = 30
        good = rng.uniform(0.8, 0.9, size=n)
        mid = rng.uniform(0.6, 0.7, size=n)
        bad = rng.uniform(0.3, 0.4, size=n)
        result = friedman_test(np.column_stack([good, mid, bad]))
        assert result.significant
        assert result.average_ranks[0] < result.average_ranks[2]

    def test_identical_columns_insignificant(self):
        acc = np.tile(np.linspace(0.5, 0.9, 10)[:, None], (1, 3))
        result = friedman_test(acc)
        assert not result.significant

    def test_needs_three_measures(self):
        with pytest.raises(EvaluationError):
            friedman_test(np.ones((5, 2)))

    def test_needs_two_datasets(self):
        with pytest.raises(EvaluationError):
            friedman_test(np.ones((1, 3)))


class TestNemenyi:
    def test_q_critical_matches_demsar_table(self):
        assert q_critical(2, 0.05) == pytest.approx(1.960, abs=0.01)
        assert q_critical(10, 0.05) == pytest.approx(3.164, abs=0.01)
        assert q_critical(5, 0.10) == pytest.approx(2.459, abs=0.01)

    def test_cd_formula(self):
        # CD = q * sqrt(k(k+1)/(6N))
        cd = critical_difference(5, 60, alpha=0.05)
        assert cd == pytest.approx(2.728 * np.sqrt(5 * 6 / (6 * 60)), abs=0.01)

    def test_cd_shrinks_with_more_datasets(self):
        assert critical_difference(5, 200) < critical_difference(5, 20)

    def test_cliques_merge_close_measures(self, rng):
        n = 50
        a = rng.uniform(0.80, 0.90, size=n)
        b = a + rng.normal(0, 0.005, size=n)  # statistically tied with a
        c = rng.uniform(0.30, 0.40, size=n)  # clearly worse
        result = nemenyi_test(["a", "b", "c"], np.column_stack([a, b, c]))
        assert result.significant
        top_clique = result.cliques[0]
        assert set(top_clique) >= {"a", "b"}
        assert result.significantly_worse_than_best("c")

    def test_difference_from_best(self, rng):
        acc = np.column_stack(
            [rng.uniform(0.8, 0.9, 20), rng.uniform(0.4, 0.5, 20), rng.uniform(0.1, 0.2, 20)]
        )
        result = nemenyi_test(["x", "y", "z"], acc)
        assert result.difference_from_best(result.names[0]) == 0.0
        assert result.difference_from_best(result.names[-1]) > 0.0
