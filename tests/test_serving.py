"""Tests for the online query-serving subsystem (repro.serving).

Covers the three layers and their contracts:

- **artifacts**: fit/save/load round-trips, fingerprint stability, and
  integrity refusal on tampered bytes;
- **engine**: online predictions bitwise-identical to the offline
  ``one_nn_predict`` path for all three measure families, LRU cache
  semantics, and 8-thread concurrency determinism;
- **server**: endpoint behavior, malformed-request handling, 503 load
  shedding with zero wrong answers on admitted requests, metrics
  exposure, and graceful shutdown flushing in-flight requests.
"""

from __future__ import annotations

import base64
import io
import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.classification.one_nn import one_nn_predict
from repro.datasets import default_archive
from repro.distances import get_measure
from repro.exceptions import ArtifactError, ServingError
from repro.normalization import get_normalizer
from repro.serving import (
    ARTIFACT_SCHEMA,
    AdmissionGate,
    ModelArtifact,
    QueryEngine,
    ReproServer,
)

#: (measure, normalization, params) triples spanning every engine route:
#: lock-step matrix kernel, sliding precomputed-FFT, banded-DTW cascade,
#: and the generic matrix fallback used by the other elastic measures.
FAMILY_CASES = [
    ("euclidean", "zscore", None),
    ("nccc", "zscore", None),
    ("dtw", "zscore", {"delta": 10.0}),
    ("msm", None, {"c": 0.5}),
]


@pytest.fixture(scope="module")
def dataset():
    return default_archive(n_datasets=4, size_scale=0.4, seed=3).subset(1)[0]


@pytest.fixture(scope="module")
def nccc_artifact(dataset):
    return ModelArtifact.fit_dataset(
        dataset, measure="nccc", normalization="zscore"
    )


def offline_labels(artifact: ModelArtifact, queries: np.ndarray) -> np.ndarray:
    """The offline reference path: normalize, full matrix, Algorithm 1."""
    if artifact.normalization is not None:
        queries = get_normalizer(artifact.normalization).apply_dataset(queries)
    E = get_measure(artifact.measure).pairwise(
        queries, artifact.train_X, **artifact.params
    )
    return one_nn_predict(E, artifact.train_y)


def post_json(url: str, payload: dict, timeout: float = 10.0):
    """POST helper returning ``(status, decoded_body)`` without raising."""
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestModelArtifact:
    def test_roundtrip_preserves_everything(self, dataset, tmp_path):
        art = ModelArtifact.fit_dataset(
            dataset, measure="nccc", normalization="zscore"
        )
        art.save(tmp_path / "a")
        loaded = ModelArtifact.load(tmp_path / "a")
        assert loaded.fingerprint == art.fingerprint
        assert loaded.measure == "nccc"
        assert loaded.normalization == "zscore"
        np.testing.assert_array_equal(loaded.train_X, art.train_X)
        np.testing.assert_array_equal(loaded.train_y, art.train_y)
        assert set(loaded.precomputed) == set(art.precomputed)
        for name in art.precomputed:
            np.testing.assert_array_equal(
                loaded.precomputed[name], art.precomputed[name]
            )

    def test_fingerprint_is_config_and_data_sensitive(self, dataset):
        base = ModelArtifact.fit_dataset(dataset, measure="nccc")
        assert base.fingerprint == ModelArtifact.fit_dataset(
            dataset, measure="nccc"
        ).fingerprint
        assert base.fingerprint != ModelArtifact.fit_dataset(
            dataset, measure="euclidean"
        ).fingerprint
        assert base.fingerprint != ModelArtifact.fit_dataset(
            dataset, measure="nccc", normalization="zscore"
        ).fingerprint
        perturbed = dataset.train_X.copy()
        perturbed[0, 0] += 1.0
        assert base.fingerprint != ModelArtifact.fit(
            perturbed, dataset.train_y, measure="nccc"
        ).fingerprint

    def test_precomputations_per_family(self, dataset):
        sliding = ModelArtifact.fit_dataset(dataset, measure="nccc")
        assert set(sliding.precomputed) == {
            "sliding_fft_conj", "sliding_norms",
        }
        elastic = ModelArtifact.fit_dataset(
            dataset, measure="dtw", params={"delta": 10.0}
        )
        assert set(elastic.precomputed) == {"envelopes"}
        assert elastic.precomputed["envelopes"].shape == (
            dataset.train_X.shape[0], 2, dataset.train_X.shape[1],
        )
        lockstep = ModelArtifact.fit_dataset(dataset, measure="euclidean")
        assert lockstep.precomputed == {}

    def test_pairwise_normalization_rejected(self, dataset):
        with pytest.raises(ArtifactError, match="pairwise"):
            ModelArtifact.fit_dataset(
                dataset, measure="euclidean", normalization="adaptive"
            )

    def test_tampered_arrays_refused(self, dataset, tmp_path):
        art = ModelArtifact.fit_dataset(dataset, measure="euclidean")
        path = art.save(tmp_path / "a")
        with np.load(path / "arrays.npz") as bundle:
            arrays = {name: bundle[name] for name in bundle.files}
        arrays["train_X"][0, 0] += 1.0
        np.savez(path / "arrays.npz", **arrays)
        with pytest.raises(ArtifactError, match="integrity"):
            ModelArtifact.load(path)

    def test_tampered_manifest_refused(self, dataset, tmp_path):
        art = ModelArtifact.fit_dataset(dataset, measure="euclidean")
        path = art.save(tmp_path / "a")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["params"] = {"bogus": 1.0}
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="fingerprint"):
            ModelArtifact.load(path)

    def test_schema_and_missing_files_refused(self, dataset, tmp_path):
        with pytest.raises(ArtifactError, match="not an artifact"):
            ModelArtifact.load(tmp_path / "nope")
        art = ModelArtifact.fit_dataset(dataset, measure="euclidean")
        path = art.save(tmp_path / "a")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schema"] = "repro.artifact/999"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="schema"):
            ModelArtifact.load(path)
        assert ARTIFACT_SCHEMA == "repro.artifact/1"


class TestQueryEngine:
    @pytest.mark.parametrize("measure,norm,params", FAMILY_CASES)
    def test_online_equals_offline_bitwise(
        self, dataset, tmp_path, measure, norm, params
    ):
        art = ModelArtifact.fit_dataset(
            dataset, measure=measure, normalization=norm, params=params
        )
        # Through a save/load cycle, as production would run it.
        art.save(tmp_path / measure)
        engine = QueryEngine(ModelArtifact.load(tmp_path / measure))
        online = engine.predict(dataset.test_X)
        np.testing.assert_array_equal(
            online, offline_labels(art, dataset.test_X)
        )

    def test_routes(self, dataset):
        def route(measure, **kw):
            return QueryEngine(
                ModelArtifact.fit_dataset(dataset, measure=measure, **kw)
            ).route

        assert route("euclidean") == "matrix"
        assert route("nccc") == "sliding"
        assert route("dtw", params={"delta": 10.0}) == "cascade"
        assert route("msm") == "matrix"

    def test_cascade_toggle_agrees(self, dataset):
        art = ModelArtifact.fit_dataset(
            dataset, measure="dtw", normalization="zscore",
            params={"delta": 10.0},
        )
        with_cascade = QueryEngine(art, use_cascade=True)
        without = QueryEngine(art, use_cascade=False)
        detailed = with_cascade.predict_detailed(dataset.test_X)
        np.testing.assert_array_equal(
            detailed.labels, without.predict(dataset.test_X)
        )
        # The cascade must actually have pruned something on smooth data.
        assert detailed.pruned > 0

    def test_query_shape_validated(self, nccc_artifact):
        engine = QueryEngine(nccc_artifact)
        with pytest.raises(ServingError, match="length"):
            engine.predict(np.zeros(7))

    def test_cache_hits_and_eviction(self, dataset, nccc_artifact):
        engine = QueryEngine(nccc_artifact, cache_size=4)
        batch = dataset.test_X[:3]
        first = engine.predict_detailed(batch)
        assert first.cache_hits == 0
        second = engine.predict_detailed(batch)
        assert second.cache_hits == 3
        np.testing.assert_array_equal(first.labels, second.labels)
        np.testing.assert_array_equal(first.distances, second.distances)
        stats = engine.cache_stats()
        assert stats.hits == 3 and stats.misses == 3 and stats.size == 3
        # Overflow the 4-entry cache: oldest entries evict, size bounded.
        engine.predict(dataset.test_X[3:9])
        stats = engine.cache_stats()
        assert stats.size == 4
        assert stats.evictions > 0

    def test_cache_disabled(self, dataset, nccc_artifact):
        engine = QueryEngine(nccc_artifact, cache_size=0)
        engine.predict(dataset.test_X[:2])
        engine.predict(dataset.test_X[:2])
        stats = engine.cache_stats()
        assert stats.hits == 0 and stats.size == 0 and stats.capacity == 0

    def test_single_series_query(self, dataset, nccc_artifact):
        engine = QueryEngine(nccc_artifact)
        label = engine.predict(dataset.test_X[0])
        assert label.shape == (1,)
        np.testing.assert_array_equal(
            label, offline_labels(nccc_artifact, dataset.test_X[:1])
        )


class TestConcurrency:
    @pytest.mark.parametrize("measure,norm,params", FAMILY_CASES[:3])
    def test_8_threads_bitwise_equal_serial(
        self, dataset, measure, norm, params
    ):
        art = ModelArtifact.fit_dataset(
            dataset, measure=measure, normalization=norm, params=params
        )
        serial = QueryEngine(art, cache_size=64).predict(dataset.test_X)
        engine = QueryEngine(art, cache_size=64)
        # 8 threads x 4 rounds over overlapping slices: plenty of cache
        # races, identical answers required.
        slices = [
            dataset.test_X[i % dataset.test_X.shape[0]:][:5]
            for i in range(32)
        ]
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(engine.predict, slices))
        for q, labels in zip(slices, results):
            offset = next(
                i for i in range(dataset.test_X.shape[0])
                if np.array_equal(dataset.test_X[i], q[0])
            )
            np.testing.assert_array_equal(
                labels, serial[offset:offset + q.shape[0]]
            )

    def test_cache_counters_consistent_under_race(self, dataset, nccc_artifact):
        engine = QueryEngine(nccc_artifact, cache_size=1024)
        batch = dataset.test_X[:6]
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(
                pool.map(lambda _: engine.predict_detailed(batch), range(16))
            )
        for result in results[1:]:
            np.testing.assert_array_equal(results[0].labels, result.labels)
            np.testing.assert_array_equal(
                results[0].distances, result.distances
            )
        stats = engine.cache_stats()
        # Every query was either a hit or a miss, nothing lost or
        # double-counted even when threads raced on the same keys.
        assert stats.hits + stats.misses == 16 * 6
        assert stats.misses >= 6  # at least the first computation
        assert stats.size == 6


class TestAdmissionGate:
    def test_admit_and_release(self):
        gate = AdmissionGate(2)
        assert gate.try_enter() and gate.try_enter()
        assert not gate.try_enter()
        gate.leave()
        assert gate.depth == 1
        assert gate.try_enter()

    def test_invalid_limit(self):
        with pytest.raises(ServingError):
            AdmissionGate(0)


@pytest.fixture()
def live_server(dataset, nccc_artifact):
    engine = QueryEngine(nccc_artifact)
    server = ReproServer(engine, port=0, max_inflight=4, retry_after=0.5)
    server.start_background()
    yield server, engine
    if server._thread is not None:
        server.shutdown()


class TestServer:
    def test_predict_json(self, dataset, live_server):
        server, engine = live_server
        status, body, _ = post_json(
            server.url + "/predict",
            {"queries": dataset.test_X[:4].tolist()},
        )
        assert status == 200
        expected = offline_labels(engine.artifact, dataset.test_X[:4])
        assert body["labels"] == expected.tolist()
        assert body["batch"] == 4
        assert len(body["indices"]) == len(body["distances"]) == 4

    def test_predict_npy_b64(self, dataset, live_server):
        server, engine = live_server
        buf = io.BytesIO()
        np.save(buf, dataset.test_X[:3])
        status, body, _ = post_json(
            server.url + "/predict",
            {"queries_npy_b64": base64.b64encode(buf.getvalue()).decode()},
        )
        assert status == 200
        expected = offline_labels(engine.artifact, dataset.test_X[:3])
        assert body["labels"] == expected.tolist()

    def test_healthz(self, live_server):
        server, engine = live_server
        with urllib.request.urlopen(server.url + "/healthz", timeout=10) as r:
            body = json.loads(r.read())
        assert body["status"] == "ok"
        assert body["artifact"]["fingerprint"] == engine.artifact.fingerprint
        assert body["artifact"]["measure"] == "nccc"

    def test_metrics_reports_request_percentiles(self, dataset, live_server):
        server, _ = live_server
        for _ in range(3):
            post_json(
                server.url + "/predict",
                {"queries": dataset.test_X[:2].tolist()},
            )
        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as r:
            body = json.loads(r.read())
        requests = [
            rec for rec in body["metrics"] if rec["name"] == "serve.request"
        ]
        assert sum(rec["aggregate"]["count"] for rec in requests) >= 3
        assert max(rec["aggregate"]["p95"] for rec in requests) > 0.0
        predicts = [
            rec for rec in body["metrics"] if rec["name"] == "serve.predict"
        ]
        assert predicts and all(
            rec["attrs"].get("measure") == "nccc" for rec in predicts
        )
        assert body["cache"]["capacity"] > 0

    def test_bad_requests(self, live_server):
        server, _ = live_server
        status, body, _ = post_json(server.url + "/predict", {"nope": 1})
        assert status == 400 and "queries" in body["error"]
        status, body, _ = post_json(
            server.url + "/predict", {"queries": [["x"]]}
        )
        assert status == 400
        status, body, _ = post_json(server.url + "/nothing", {"queries": []})
        assert status == 404


@pytest.fixture()
def indexed_server(dataset):
    """A live server whose artifact carries both an exact and an ANN index."""
    artifact = ModelArtifact.fit_dataset(
        dataset, measure="euclidean", normalization="zscore",
        index=["dft_lb", "grail_ann"],
    )
    engine = QueryEngine(artifact)
    server = ReproServer(engine, port=0, max_inflight=4)
    server.start_background()
    yield server, engine
    if server._thread is not None:
        server.shutdown()


class TestServerSearchAPI:
    """Schema negotiation and index counters on the redesigned /predict."""

    def test_legacy_request_gets_v1_shape(self, dataset, indexed_server):
        server, _ = indexed_server
        status, body, _ = post_json(
            server.url + "/predict",
            {"queries": dataset.test_X[:3].tolist()},
        )
        assert status == 200
        assert "schema" not in body
        assert set(body) == {
            "labels", "indices", "distances", "cache_hits", "batch",
        }
        assert not isinstance(body["indices"][0], list)  # flat, not nested

    def test_k_request_upgrades_to_v2(self, dataset, indexed_server):
        server, engine = indexed_server
        status, body, _ = post_json(
            server.url + "/predict",
            {"queries": dataset.test_X[:3].tolist(), "k": 3},
        )
        assert status == 200
        assert body["schema"] == 2
        assert body["k"] == 3 and body["mode"] == "exact"
        assert len(body["neighbor_indices"]) == 3
        assert len(body["neighbor_indices"][0]) == 3
        expected = engine.search(dataset.test_X[:3], k=3)
        assert body["neighbor_indices"] == expected.neighbor_indices.tolist()
        assert body["pruned"] + body["full_computations"] > 0

    def test_explicit_schema_2_without_k(self, dataset, indexed_server):
        server, _ = indexed_server
        status, body, _ = post_json(
            server.url + "/predict",
            {"queries": dataset.test_X[:2].tolist(), "schema": 2},
        )
        assert status == 200
        assert body["schema"] == 2 and body["k"] == 1

    def test_v1_with_k_gt_1_rejected(self, dataset, indexed_server):
        server, _ = indexed_server
        status, body, _ = post_json(
            server.url + "/predict",
            {"queries": dataset.test_X[:2].tolist(), "schema": 1, "k": 3},
        )
        assert status == 400 and "schema" in body["error"]

    def test_mode_approx_and_brute(self, dataset, indexed_server):
        server, _ = indexed_server
        status, body, _ = post_json(
            server.url + "/predict",
            {"queries": dataset.test_X[:3].tolist(), "mode": "approx"},
        )
        assert status == 200 and body["mode"] == "approx"
        status, exact, _ = post_json(
            server.url + "/predict",
            {"queries": dataset.test_X[:3].tolist(), "mode": "exact", "k": 2},
        )
        status, brute, _ = post_json(
            server.url + "/predict",
            {"queries": dataset.test_X[:3].tolist(), "mode": "brute", "k": 2},
        )
        assert exact["neighbor_distances"] == brute["neighbor_distances"]
        status, body, _ = post_json(
            server.url + "/predict",
            {"queries": dataset.test_X[:2].tolist(), "mode": "fastest"},
        )
        assert status == 400

    def test_index_counters_in_both_metrics_formats(
        self, dataset, indexed_server
    ):
        server, _ = indexed_server
        post_json(
            server.url + "/predict",
            {"queries": dataset.test_X[:4].tolist(), "k": 2},
        )
        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as r:
            body = json.loads(r.read())
        assert body["counters"].get("serve.index.candidates", 0) > 0
        assert "serve.index.pruned" in body["counters"]
        req = urllib.request.Request(
            server.url + "/metrics?format=prometheus"
        )
        with urllib.request.urlopen(req, timeout=10) as r:
            text = r.read().decode()
        assert "repro_serve_index_candidates_total" in text
        assert "repro_serve_index_pruned_total" in text

    def test_overload_sheds_with_503_and_no_wrong_answers(
        self, dataset, nccc_artifact
    ):
        engine = QueryEngine(nccc_artifact, cache_size=0)
        server = ReproServer(engine, port=0, max_inflight=1, retry_after=2.0)
        entered, release = threading.Event(), threading.Event()
        inner = engine.search

        def slow_search(queries, **kwargs):
            entered.set()
            assert release.wait(10.0)
            return inner(queries, **kwargs)

        engine.search = slow_search  # type: ignore[method-assign]
        expected = offline_labels(nccc_artifact, dataset.test_X[:2])
        with server.start_background():
            first: dict = {}

            def admitted_request():
                first["response"] = post_json(
                    server.url + "/predict",
                    {"queries": dataset.test_X[:2].tolist()},
                )

            thread = threading.Thread(target=admitted_request)
            thread.start()
            assert entered.wait(10.0)
            # Gate full: the second request must shed immediately.
            status, body, headers = post_json(
                server.url + "/predict",
                {"queries": dataset.test_X[:2].tolist()},
            )
            assert status == 503
            assert headers.get("Retry-After") == "2"
            assert body["limit"] == 1
            release.set()
            thread.join(timeout=10.0)
        status, body, _ = first["response"]
        assert status == 200
        assert body["labels"] == expected.tolist()

    def test_graceful_shutdown_flushes_inflight(self, dataset, nccc_artifact):
        engine = QueryEngine(nccc_artifact, cache_size=0)
        server = ReproServer(engine, port=0, max_inflight=4)
        entered, release = threading.Event(), threading.Event()
        inner = engine.search

        def slow_search(queries, **kwargs):
            entered.set()
            assert release.wait(10.0)
            return inner(queries, **kwargs)

        engine.search = slow_search  # type: ignore[method-assign]
        server.start_background()
        result: dict = {}

        def inflight_request():
            result["response"] = post_json(
                server.url + "/predict",
                {"queries": dataset.test_X[:1].tolist()},
            )

        request_thread = threading.Thread(target=inflight_request)
        request_thread.start()
        assert entered.wait(10.0)
        shutdown_thread = threading.Thread(target=server.shutdown)
        shutdown_thread.start()
        # Shutdown must block on the in-flight request, not abort it.
        shutdown_thread.join(timeout=0.3)
        assert shutdown_thread.is_alive()
        release.set()
        request_thread.join(timeout=10.0)
        shutdown_thread.join(timeout=10.0)
        assert not shutdown_thread.is_alive()
        status, body, _ = result["response"]
        assert status == 200
        assert body["labels"] == offline_labels(
            nccc_artifact, dataset.test_X[:1]
        ).tolist()
