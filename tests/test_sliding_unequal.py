"""Unequal-length support for the sliding measures (paper Section 6 note:
'the measure can also operate with unequal lengths')."""

import numpy as np
import pytest

from repro.distances import get_measure
from repro.distances.sliding import (
    best_shift,
    cross_correlation,
    cross_correlation_naive,
    ncc_b,
    ncc_c,
    ncc_u,
)
from repro.distances.sliding.cross_correlation import _shift_counts


@pytest.fixture(scope="module")
def unequal_pair(rng):
    return rng.normal(size=40), rng.normal(size=25)


class TestUnequalCrossCorrelation:
    def test_sequence_length(self, unequal_pair):
        x, y = unequal_pair
        assert cross_correlation(x, y).shape == (40 + 25 - 1,)

    def test_fft_matches_naive(self, rng):
        for m, n in ((10, 7), (7, 10), (1, 5), (5, 1), (2, 2)):
            x, y = rng.normal(size=m), rng.normal(size=n)
            assert np.allclose(
                cross_correlation(x, y),
                cross_correlation_naive(x, y),
                atol=1e-8,
            ), (m, n)

    def test_zero_shift_entry_is_dot_over_overlap(self, unequal_pair):
        x, y = unequal_pair
        cc = cross_correlation(x, y)
        assert cc[y.shape[0] - 1] == pytest.approx(
            float(np.dot(x[: y.shape[0]], y))
        )

    def test_shift_counts_general(self):
        counts = _shift_counts(5, 3)
        # shifts -2..4: overlaps 1,2,3,3,3,2,1
        assert counts.tolist() == [1, 2, 3, 3, 3, 2, 1]

    def test_best_shift_finds_embedded_pattern(self, rng):
        pattern = rng.normal(size=12)
        x = np.zeros(40)
        x[17:29] = pattern
        assert best_shift(x, pattern) == 17


class TestUnequalVariants:
    def test_nccc_finds_embedded_pattern(self, rng):
        pattern = rng.normal(size=15)
        x = np.zeros(50)
        x[20:35] = pattern
        # The pattern is a sub-shape of x: high correlation at shift 20.
        assert ncc_c(x, pattern) < ncc_c(x, rng.normal(size=15))

    def test_symmetry_up_to_shift_reflection(self, unequal_pair):
        x, y = unequal_pair
        assert ncc_c(x, y) == pytest.approx(ncc_c(y, x), abs=1e-9)

    def test_ncc_b_divides_by_longer(self, unequal_pair):
        x, y = unequal_pair
        raw = -cross_correlation(x, y).max()
        assert ncc_b(x, y) == pytest.approx(raw / 40)

    def test_ncc_u_finite(self, unequal_pair):
        x, y = unequal_pair
        assert np.isfinite(ncc_u(x, y))

    def test_registry_accepts_unequal(self, unequal_pair):
        x, y = unequal_pair
        assert np.isfinite(get_measure("sbd")(x, y))
