"""Tests for request-scoped telemetry (repro.observability.telemetry).

Covers the layers the serving path's observability is built from:

- **trace context**: ContextVar propagation, nesting, thread isolation,
  and the bus stamping the ambient id into span attributes;
- **span ids**: the pid+nonce prefix that keeps ids collision-free
  across process-pool workers even under pid reuse;
- **TraceBuffer**: finalize-on-root semantics, recent/slowest retention,
  bounded pending and per-trace buffers, JSON detail shape;
- **Prometheus exposition**: kind-aware rendering (summary vs counter),
  bus-counter dedup, and the linter both passing real output and
  catching crafted malformations;
- **SLO tracking**: windowed p99 judgment under a fake clock, breach /
  recover transitions, error-budget burn;
- **server integration**: header propagation, ``/debug/traces``,
  content-negotiated ``/metrics``, readiness flips, the JSON access
  log, concurrent-client trace isolation, and the ``repro top`` / serve
  trace summarize CLI surfaces.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro.observability.bus as bus_mod
from repro.datasets import default_archive
from repro.observability import (
    EventBus,
    JsonlSink,
    MetricsSink,
    current_trace_id,
    get_bus,
    new_trace_id,
    trace_context,
    valid_trace_id,
)
from repro.observability.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    SloTracker,
    TraceBuffer,
    lint_prometheus,
    render_exposition,
    render_top,
    run_top,
)
from repro.serving import ModelArtifact, QueryEngine, ReproServer


@pytest.fixture(scope="module")
def dataset():
    return default_archive(n_datasets=4, size_scale=0.4, seed=3).subset(1)[0]


@pytest.fixture(scope="module")
def nccc_artifact(dataset):
    return ModelArtifact.fit_dataset(
        dataset, measure="nccc", normalization="zscore"
    )


def get_json(url: str, headers: dict | None = None, timeout: float = 10.0):
    req = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def post_json(
    url: str,
    payload: dict,
    headers: dict | None = None,
    timeout: float = 10.0,
):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


# ----------------------------------------------------------------------
# trace context
# ----------------------------------------------------------------------


class TestTraceContext:
    def test_ambient_id_set_and_restored(self):
        assert current_trace_id() is None
        with trace_context() as tid:
            assert current_trace_id() == tid
            assert valid_trace_id(tid)
        assert current_trace_id() is None

    def test_adopts_supplied_id_and_nests(self):
        with trace_context("abcd1234") as outer:
            assert outer == "abcd1234"
            with trace_context("feed5678") as inner:
                assert current_trace_id() == inner == "feed5678"
            assert current_trace_id() == "abcd1234"

    def test_fresh_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(256)}) == 256

    def test_validation_rejects_junk(self):
        assert valid_trace_id("deadbeef")
        assert valid_trace_id("1f-2e.3d" + "a" * 20)
        for junk in ("", "ab", "x" * 65, 'ab"cd1234', "zzzz9999", None, 42):
            assert not valid_trace_id(junk)

    def test_thread_isolation(self):
        seen: dict[str, str | None] = {}
        barrier = threading.Barrier(2)

        def worker(name: str, tid: str | None) -> None:
            if tid is None:
                barrier.wait()
                seen[name] = current_trace_id()
                barrier.wait()
            else:
                with trace_context(tid):
                    barrier.wait()
                    seen[name] = current_trace_id()
                    barrier.wait()

        threads = [
            threading.Thread(target=worker, args=("traced", "cafe0001")),
            threading.Thread(target=worker, args=("bare", None)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"traced": "cafe0001", "bare": None}

    def test_bus_stamps_trace_id_into_spans(self):
        from repro.observability import Recorder

        bus = EventBus()
        recorder = Recorder()
        bus.attach(recorder)
        with trace_context("beef0123") as tid:
            with bus.span("serve.request", path="/x"):
                with bus.span("serve.predict"):
                    pass
        with bus.span("untraced"):
            pass
        captured = recorder.events
        traced = [e for e in captured if e.attrs.get("trace_id") == tid]
        assert {e.name for e in traced} == {"serve.request", "serve.predict"}
        (bare,) = [e for e in captured if e.name == "untraced"]
        assert "trace_id" not in bare.attrs


class TestSpanIds:
    def test_id_carries_pid_and_nonce(self):
        import os

        span_id = bus_mod.next_span_id()
        prefix, _, seq = span_id.rpartition(".")
        pid_hex, _, nonce_hex = prefix.partition("-")
        assert int(pid_hex, 16) == os.getpid()
        assert len(nonce_hex) == 8 and int(nonce_hex, 16) >= 0
        assert int(seq, 16) > 0

    def test_pid_reuse_gets_fresh_nonce(self, monkeypatch):
        """Two processes that happen to share a pid (pool worker
        replacement under pid recycling) must still mint distinct ids."""
        first = bus_mod.next_span_id().rpartition(".")[0]
        # Simulate the fork: same pid observed, but the process tag is
        # reset as it would be in a fresh interpreter.
        monkeypatch.setattr(bus_mod, "_PROCESS_TAG", None)
        second = bus_mod.next_span_id().rpartition(".")[0]
        assert first.partition("-")[0] == second.partition("-")[0]  # pid
        assert first != second  # nonce differs

    def test_fork_awareness_renews_prefix(self, monkeypatch):
        before = bus_mod.next_span_id().rpartition(".")[0]
        monkeypatch.setattr(bus_mod.os, "getpid", lambda: 999_999)
        after = bus_mod.next_span_id().rpartition(".")[0]
        assert after.partition("-")[0] == f"{999_999:x}"
        assert before != after


# ----------------------------------------------------------------------
# TraceBuffer
# ----------------------------------------------------------------------


def _trace(bus: EventBus, tid: str, sleep: float = 0.0) -> None:
    import time as _time

    with trace_context(tid):
        with bus.span("serve.request", path="/predict"):
            with bus.span("serve.predict", backend="reference"):
                if sleep:
                    _time.sleep(sleep)


class TestTraceBuffer:
    def test_finalizes_on_root_and_builds_tree(self):
        bus, buf = EventBus(), TraceBuffer()
        bus.attach(buf)
        _trace(bus, "aaaa0001")
        trace = buf.get("aaaa0001")
        assert trace is not None
        assert trace.root.name == "serve.request"
        assert trace.summary()["path"] == "/predict"
        detail = trace.to_dict()
        (root_node,) = detail["tree"]
        assert root_node["name"] == "serve.request"
        assert root_node["children"][0]["name"] == "serve.predict"
        assert root_node["children"][0]["attrs"]["backend"] == "reference"
        assert "trace_id" not in root_node["attrs"]
        names = [hop["name"] for hop in detail["critical_path"]]
        assert names == ["serve.request", "serve.predict"]
        assert json.loads(json.dumps(detail)) == detail  # JSON-clean

    def test_incomplete_trace_is_not_retrievable(self):
        bus, buf = EventBus(), TraceBuffer()
        bus.attach(buf)
        with trace_context("bbbb0001"):
            with bus.span("serve.predict"):  # no root ever closes
                pass
        assert buf.get("bbbb0001") is None
        assert buf.stats()["pending"] == 1

    def test_untraced_and_non_span_events_ignored(self):
        bus, buf = EventBus(), TraceBuffer()
        bus.attach(buf)
        with bus.span("serve.request", path="/x"):
            pass
        bus.count("serve.shed")
        stats = buf.stats()
        assert stats["completed"] == 0 and stats["pending"] == 0

    def test_recent_ring_evicts_oldest(self):
        bus = EventBus()
        buf = TraceBuffer(keep_recent=2, keep_slowest=2)
        bus.attach(buf)
        for i in range(4):
            # Later traces are slower, so the old fast ones are evicted
            # from the slowest store too, not just the recency ring.
            _trace(bus, f"cccc000{i}", sleep=0.002 * i)
        recent = [t.trace_id for t in buf.traces(order="recent")]
        assert recent == ["cccc0003", "cccc0002"]
        assert buf.get("cccc0000") is None

    def test_slowest_keeps_duration_top_n(self):
        bus = EventBus()
        buf = TraceBuffer(keep_recent=1, keep_slowest=2)
        bus.attach(buf)
        _trace(bus, "dddd0001", sleep=0.03)
        _trace(bus, "dddd0002", sleep=0.0)
        _trace(bus, "dddd0003", sleep=0.02)
        _trace(bus, "dddd0004", sleep=0.0)
        slowest = [t.trace_id for t in buf.traces(order="slowest")]
        assert slowest == ["dddd0001", "dddd0003"]
        # The slow trace stays retrievable even after falling out of the
        # recency ring — that's the tail-based point.
        assert buf.get("dddd0001") is not None

    def test_pending_bound_drops_oldest_trace(self):
        bus = EventBus()
        buf = TraceBuffer(max_pending=2)
        bus.attach(buf)
        for i in range(3):
            with trace_context(f"eeee000{i}"):
                with bus.span("serve.predict"):
                    pass
        stats = buf.stats()
        assert stats["pending"] == 2
        assert stats["dropped_pending_traces"] == 1

    def test_event_cap_truncates_but_keeps_root(self):
        bus = EventBus()
        buf = TraceBuffer(max_events_per_trace=3)
        bus.attach(buf)
        with trace_context("ffff0001"):
            with bus.span("serve.request", path="/predict"):
                for _ in range(10):
                    with bus.span("matrix.compute"):
                        pass
        trace = buf.get("ffff0001")
        assert trace is not None
        assert trace.events[-1].name == "serve.request"
        assert len(trace.events) == 4  # 3 buffered + the root
        assert buf.stats()["dropped_events"] == 7

    def test_traces_rejects_unknown_order(self):
        with pytest.raises(ValueError):
            TraceBuffer().traces(order="fastest")

    def test_limit_and_clear(self):
        bus, buf = EventBus(), TraceBuffer()
        bus.attach(buf)
        for i in range(5):
            _trace(bus, f"abab000{i}")
        assert len(buf.traces(order="recent", limit=2)) == 2
        buf.clear()
        assert buf.traces() == []
        assert buf.stats()["completed"] == 5  # counters survive clear


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------


class TestPrometheus:
    def _sink(self) -> MetricsSink:
        bus = EventBus()
        sink = MetricsSink(group_by=("path", "status", "route", "measure"))
        bus.attach(sink)
        for status in (200, 404):
            with bus.span("serve.request", path="/predict", status=status):
                pass
        bus.count("serve.cache.hit")
        bus.count("serve.cache.hit")
        return sink

    def test_renders_lintable_output(self):
        sink = self._sink()
        text = render_exposition(
            sink,
            {"serve.shed": 3, "serve.cache.hit": 2},
            {"repro_serve_inflight": 1.0},
        )
        assert lint_prometheus(text) == [], lint_prometheus(text)
        assert text.endswith("\n")

    def test_span_becomes_summary_counter_becomes_total(self):
        sink = self._sink()
        text = render_exposition(sink, {"serve.shed": 3})
        assert "# TYPE repro_serve_request_seconds summary" in text
        assert 'quantile="0.99"' in text
        assert "repro_serve_request_seconds_count" in text
        assert "# TYPE repro_serve_shed_total counter" in text
        assert "repro_serve_shed_total 3.0" in text
        # Sink-recorded counter events render as labeled counters, and
        # the matching bus total is deduplicated.
        assert "# TYPE repro_serve_cache_hit_total counter" in text
        assert text.count("repro_serve_cache_hit_total") >= 2  # HELP+TYPE+sample

    def test_label_allowlist_drops_high_cardinality_attrs(self):
        bus = EventBus()
        sink = MetricsSink(group_by=("path", "batch"))
        bus.attach(sink)
        with bus.span("serve.request", path="/predict", batch=17):
            pass
        text = render_exposition(sink)
        assert 'path="/predict"' in text
        assert "batch" not in text

    def test_label_values_are_escaped(self):
        bus = EventBus()
        sink = MetricsSink(group_by=("path",))
        bus.attach(sink)
        with bus.span("serve.request", path='/we"ird\npath'):
            pass
        text = render_exposition(sink)
        assert lint_prometheus(text) == []
        assert r"we\"ird\npath" in text

    def test_gauges_with_labels(self):
        text = render_exposition(
            gauges={"repro_up": (1.0, {"backend": "compiled"})}
        )
        assert 'repro_up{backend="compiled"} 1.0' in text
        assert lint_prometheus(text) == []

    def test_lint_catches_crafted_problems(self):
        bad = "\n".join(
            [
                "# TYPE m counter",
                "# TYPE m counter",  # duplicate TYPE
                "m 1.0",
                "m 2.0",  # duplicate series
                'm{l="x",l="y"} 1',  # repeated label
                "m{=bad} 1",  # unparsable labels
                "m nope",  # invalid value
                "orphan 1.0",  # sample before TYPE
                "# WAT m",  # malformed comment
                "9bad 1.0",  # invalid metric name -> malformed line
            ]
        )
        problems = lint_prometheus(bad)
        for needle in (
            "duplicate TYPE",
            "duplicate series",
            "repeated label",
            "unparsable label",
            "invalid sample value",
            "before any TYPE",
            "malformed comment",
            "malformed sample line",
        ):
            assert any(needle in p for p in problems), (needle, problems)

    def test_metrics_sink_kind_survives_roundtrip(self):
        sink = self._sink()
        records = sink.to_dicts()
        kinds = {r["name"]: r["kind"] for r in records}
        assert kinds["serve.request"] == "span"
        assert kinds["serve.cache.hit"] == "counter"
        restored = MetricsSink.from_dicts(records)
        assert {r["name"]: r["kind"] for r in restored.to_dicts()} == kinds


# ----------------------------------------------------------------------
# SLO tracking
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


class TestSloTracker:
    def test_no_breach_below_min_requests(self):
        clock = FakeClock()
        slo = SloTracker(10.0, 60.0, min_requests=10, clock=clock)
        for _ in range(9):
            slo.observe(5.0)  # wildly over a 10ms target
        assert not slo.breaching

    def test_breach_and_burn_accounting(self):
        clock = FakeClock()
        slo = SloTracker(10.0, 60.0, min_requests=10, clock=clock)
        for _ in range(20):
            slo.observe(0.05)
        snap = slo.snapshot()
        assert snap.breaching and slo.breaching
        assert snap.breaches == 1
        assert snap.requests == 20 and snap.over_target == 20
        assert snap.burn_rate == pytest.approx(100.0)  # 100% over, 1% budget
        assert snap.to_dict()["target_p99_ms"] == 10.0

    def test_recovery_by_aging_out(self):
        clock = FakeClock()
        slo = SloTracker(10.0, window_seconds=30.0, clock=clock)
        for _ in range(12):
            slo.observe(0.05)
        assert slo.breaching
        clock.now += 31.0  # the bad window ages out entirely
        assert not slo.breaching
        assert slo.snapshot().requests == 0

    def test_transition_counters_emitted(self):
        clock = FakeClock()
        before = dict(get_bus().counters())
        slo = SloTracker(10.0, window_seconds=30.0, clock=clock)
        for _ in range(12):
            slo.observe(0.05)
        clock.now += 31.0
        for _ in range(12):
            slo.observe(0.001)
        after = get_bus().counters()
        assert (
            after.get("serve.slo.breach", 0)
            - before.get("serve.slo.breach", 0)
        ) == 1
        assert (
            after.get("serve.slo.recover", 0)
            - before.get("serve.slo.recover", 0)
        ) == 1

    def test_p99_is_exact_order_statistic(self):
        clock = FakeClock()
        slo = SloTracker(1000.0, clock=clock)
        for ms in range(1, 101):  # 1..100 ms
            slo.observe(ms / 1e3)
        assert slo.snapshot().p99_seconds == pytest.approx(0.099)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            SloTracker(0.0)
        with pytest.raises(ValueError):
            SloTracker(10.0, window_seconds=-1.0)


# ----------------------------------------------------------------------
# server integration
# ----------------------------------------------------------------------


@pytest.fixture()
def live_server(nccc_artifact, tmp_path):
    engine = QueryEngine(nccc_artifact)
    server = ReproServer(
        engine,
        port=0,
        max_inflight=8,
        trace_keep=64,
        access_log=tmp_path / "access.jsonl",
    )
    server.start_background()
    yield server, engine, tmp_path / "access.jsonl"
    if server._thread is not None:
        server.shutdown()


class TestServerTelemetry:
    def test_trace_header_minted_and_echoed(self, dataset, live_server):
        server, _, _ = live_server
        status, _, headers = post_json(
            server.url + "/predict", {"queries": dataset.test_X[:2].tolist()}
        )
        assert status == 200
        minted = headers["X-Repro-Trace-Id"]
        assert valid_trace_id(minted)

        supplied = "feedc0de12345678"
        status, _, headers = post_json(
            server.url + "/predict",
            {"queries": dataset.test_X[:2].tolist()},
            headers={"X-Repro-Trace-Id": supplied},
        )
        assert headers["X-Repro-Trace-Id"] == supplied

        status, _, headers = get_json(
            server.url + "/healthz",
            headers={"X-Repro-Trace-Id": "not valid!!"},
        )
        assert headers["X-Repro-Trace-Id"] != "not valid!!"
        assert valid_trace_id(headers["X-Repro-Trace-Id"])

    def test_predict_trace_retrievable_with_backend_attr(
        self, dataset, live_server
    ):
        server, engine, _ = live_server
        status, _, headers = post_json(
            server.url + "/predict", {"queries": dataset.test_X[:3].tolist()}
        )
        assert status == 200
        tid = headers["X-Repro-Trace-Id"]
        status, detail, _ = get_json(server.url + f"/debug/traces/{tid}")
        assert status == 200
        assert detail["trace_id"] == tid
        assert detail["path"] == "/predict" and detail["status"] == 200
        (root,) = detail["tree"]
        predict = next(
            c for c in root["children"] if c["name"] == "serve.predict"
        )
        assert predict["attrs"]["backend"] == engine.backend
        assert detail["critical_path"][0]["name"] == "serve.request"

    def test_trace_listing_orders_and_stats(self, dataset, live_server):
        server, _, _ = live_server
        for _ in range(3):
            post_json(
                server.url + "/predict",
                {"queries": dataset.test_X[:2].tolist()},
            )
        status, listing, _ = get_json(
            server.url + "/debug/traces?order=recent&limit=2"
        )
        assert status == 200
        assert len(listing["traces"]) == 2
        assert listing["stats"]["completed"] >= 3
        status, _, _ = get_json(server.url + "/debug/traces?order=fastest")
        assert status == 400
        status, _, _ = get_json(server.url + "/debug/traces/deadbeef")
        assert status == 404

    def test_metrics_content_negotiation(self, dataset, live_server):
        server, _, _ = live_server
        post_json(
            server.url + "/predict", {"queries": dataset.test_X[:2].tolist()}
        )
        # Default (and ?format=json) stays the legacy JSON document.
        status, body, headers = get_json(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert {"counters", "inflight", "cache", "metrics", "traces"} <= set(
            body
        )
        # Accept: text/plain negotiates the Prometheus exposition.
        req = urllib.request.Request(
            server.url + "/metrics", headers={"Accept": "text/plain"}
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            text = resp.read().decode()
        assert lint_prometheus(text) == [], lint_prometheus(text)
        assert "repro_serve_request_seconds" in text
        assert "repro_serve_inflight" in text
        # ?format=prometheus works without an Accept header.
        with urllib.request.urlopen(
            server.url + "/metrics?format=prometheus", timeout=10
        ) as resp:
            assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE

    def test_access_log_lines_carry_trace_ids(self, dataset, live_server):
        server, _, log_path = live_server
        status, _, headers = post_json(
            server.url + "/predict", {"queries": dataset.test_X[:2].tolist()}
        )
        tid = headers["X-Repro-Trace-Id"]
        get_json(server.url + "/healthz")
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if line
        ]
        assert all(
            {"ts", "method", "path", "status", "duration_ms", "trace_id"}
            <= set(entry)
            for entry in lines
        )
        (predict_line,) = [
            entry for entry in lines if entry["path"] == "/predict"
        ]
        assert predict_line["trace_id"] == tid
        assert predict_line["status"] == 200
        assert not predict_line["shed"]

    def test_concurrent_clients_get_isolated_traces(
        self, dataset, live_server
    ):
        """Satellite: 8 threads hammer /predict; every response's trace
        id maps to exactly one retained trace whose tree contains the
        serve.predict span with the right backend, and no two responses
        share a trace id."""
        server, engine, _ = live_server
        n_threads, per_thread = 8, 4

        def client(_: int) -> list[str]:
            ids = []
            for _ in range(per_thread):
                status, _, headers = post_json(
                    server.url + "/predict",
                    {"queries": dataset.test_X[:2].tolist()},
                )
                assert status == 200
                ids.append(headers["X-Repro-Trace-Id"])
            return ids

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            all_ids = [
                tid
                for ids in pool.map(client, range(n_threads))
                for tid in ids
            ]
        assert len(all_ids) == n_threads * per_thread
        assert len(set(all_ids)) == len(all_ids)  # no shared trace ids
        for tid in all_ids:
            status, detail, _ = get_json(server.url + f"/debug/traces/{tid}")
            assert status == 200, tid
            assert detail["trace_id"] == tid
            (root,) = detail["tree"]
            predicts = [
                c for c in root["children"] if c["name"] == "serve.predict"
            ]
            assert len(predicts) == 1
            assert predicts[0]["attrs"]["backend"] == engine.backend


class TestSloReadiness:
    def test_sustained_breach_flips_healthz(self, dataset, nccc_artifact):
        engine = QueryEngine(nccc_artifact)
        server = ReproServer(
            engine, port=0, slo_p99_ms=1e-4, slo_window=120.0
        )
        server.start_background()
        try:
            status, body, _ = get_json(server.url + "/healthz")
            assert status == 200 and body["status"] == "ok"
            assert "slo" in body and not body["slo"]["breaching"]
            for _ in range(12):  # past min_requests, all over 0.1us target
                post_json(
                    server.url + "/predict",
                    {"queries": dataset.test_X[:2].tolist()},
                )
            status, body, _ = get_json(server.url + "/healthz")
            assert status == 503
            assert body["status"] == "degraded"
            assert body["slo"]["breaching"]
            assert body["slo"]["breaches"] >= 1
            status, metrics, _ = get_json(server.url + "/metrics")
            assert metrics["slo"]["breaching"]
            assert metrics["counters"].get("serve.slo.breach", 0) >= 1
            with urllib.request.urlopen(
                server.url + "/metrics?format=prometheus", timeout=10
            ) as resp:
                text = resp.read().decode()
            assert "repro_serve_slo_breaching 1.0" in text
            assert lint_prometheus(text) == []
        finally:
            server.shutdown()


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------


class TestCliSurfaces:
    def test_trace_summarize_serve_trace(self, tmp_path, capsys):
        from repro.cli import main

        bus = get_bus()
        path = tmp_path / "serve.jsonl"
        sink = JsonlSink(path)
        bus.attach(sink)
        try:
            for i, (p, st) in enumerate(
                [("/predict", 200)] * 3 + [("/healthz", 200)]
            ):
                with trace_context(f"cdcd000{i}"):
                    with bus.span("serve.request", path=p, status=st):
                        if p == "/predict":
                            with bus.span("serve.predict", route="sliding"):
                                pass
        finally:
            bus.detach(sink)
            sink.close()
        assert main(["trace", "summarize", str(path), "--slowest", "2"]) == 0
        out = capsys.readouterr().out
        assert "Serving summary" in out
        assert "/predict" in out and "/healthz" in out
        assert out.count("Slowest request #") == 2
        assert "serve.predict" in out

    def test_trace_summarize_sweep_trace_unchanged(self, tmp_path, capsys):
        from repro.cli import main
        from repro.evaluation import MeasureVariant, run_sweep

        archive = default_archive(n_datasets=4, size_scale=0.3, seed=11)
        path = tmp_path / "sweep.jsonl"
        bus = get_bus()
        sink = JsonlSink(path)
        bus.attach(sink)
        try:
            run_sweep(
                [MeasureVariant("euclidean", label="ED")], archive.subset(1)
            )
        finally:
            bus.detach(sink)
            sink.close()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out and "ED" in out

    def test_top_once_renders_dashboard(self, dataset, nccc_artifact):
        engine = QueryEngine(nccc_artifact)
        server = ReproServer(engine, port=0, slo_p99_ms=50.0)
        server.start_background()
        try:
            for _ in range(2):
                post_json(
                    server.url + "/predict",
                    {"queries": dataset.test_X[:2].tolist()},
                )
            stream = io.StringIO()
            code = run_top(
                server.url, iterations=1, clear=False, stream=stream
            )
            assert code == 0
            frame = stream.getvalue()
            assert "/predict" in frame and "p99" in frame
            assert "slo" in frame
            assert "slowest trace" in frame
        finally:
            server.shutdown()

    def test_top_unreachable_server_fails_cleanly(self):
        stream = io.StringIO()
        code = run_top(
            "http://127.0.0.1:9",  # discard port: nothing listens
            iterations=1,
            clear=False,
            stream=stream,
            timeout=0.5,
        )
        assert code == 1

    def test_render_top_computes_rates_between_polls(self):
        def poll(t: float, count: int, shed: float) -> dict:
            agg = {
                "count": count,
                "sum": 0.1,
                "min": 0.01,
                "max": 0.02,
                "p50": 0.01,
                "p95": 0.02,
                "p99": 0.02,
                "buckets": {},
            }
            return {
                "time": t,
                "metrics": {
                    "counters": {"serve.shed": shed},
                    "inflight": 0,
                    "cache": {
                        "hits": 5,
                        "misses": 5,
                        "size": 5,
                        "capacity": 16,
                        "evictions": 0,
                    },
                    "metrics": [
                        {
                            "name": "serve.request",
                            "kind": "span",
                            "attrs": {"path": "/predict", "status": "200"},
                            "aggregate": agg,
                        }
                    ],
                },
                "slowest": None,
            }

        frame = render_top(
            poll(10.0, 40, 4.0), poll(0.0, 20, 0.0), url="http://x"
        )
        assert "2.0 qps" in frame
        assert "0.4 shed/s" in frame
        assert "50.0%" in frame
