"""Tests for the unified public API facade.

The package-level entry points (``distance``, ``pairwise_distances``,
``dissimilarity_matrix``) must accept ``normalization=`` uniformly and
agree with each other; ``describe_measure`` exposes registry metadata as
plain dicts; deprecated surfaces keep working but warn.
"""

import numpy as np
import pytest

import repro
from repro.evaluation import MeasureVariant, run_sweep


@pytest.fixture(scope="module")
def X():
    gen = np.random.default_rng(77)
    return gen.normal(size=(6, 32))


@pytest.fixture(scope="module")
def Y():
    gen = np.random.default_rng(78)
    return gen.normal(size=(4, 32))


class TestDistanceNormalization:
    def test_matches_manual_normalization(self, X):
        from repro.normalization import normalize

        expected = repro.distance(
            normalize(X[0], "zscore"), normalize(X[1], "zscore"), "euclidean"
        )
        got = repro.distance(X[0], X[1], "euclidean", normalization="zscore")
        assert got == pytest.approx(expected)

    def test_pairwise_normalizer_applies_jointly(self, X):
        # AdaptiveScaling depends on both series: routing through the
        # facade must use the pair path, not per-series normalization.
        got = repro.distance(X[0], X[1], "euclidean", normalization="adaptive")
        assert got != pytest.approx(repro.distance(X[0], X[1], "euclidean"))

    def test_none_is_identity(self, X):
        assert repro.distance(X[0], X[1]) == pytest.approx(
            repro.distance(X[0], X[1], normalization=None)
        )

    def test_unknown_normalization_raises(self, X):
        from repro.exceptions import UnknownNormalizationError

        with pytest.raises(UnknownNormalizationError):
            repro.distance(X[0], X[1], "euclidean", normalization="nope")


class TestPairwiseDistancesNormalization:
    def test_agrees_with_dissimilarity_matrix(self, X, Y):
        for norm in (None, "zscore", "minmax", "adaptive"):
            want = repro.dissimilarity_matrix("lorentzian", X, Y, norm)
            got = repro.pairwise_distances(
                X, Y, "lorentzian", normalization=norm
            )
            np.testing.assert_allclose(got, want)

    def test_self_matrix_with_normalization(self, X):
        D = repro.pairwise_distances(X, measure="msm", normalization="zscore")
        assert D.shape == (len(X), len(X))
        np.testing.assert_allclose(np.diag(D), 0.0, atol=1e-12)

    def test_old_positional_signature_still_works(self, X, Y):
        # pre-1.1 call shape: (X, Y, measure, **params)
        D = repro.pairwise_distances(X, Y, "dtw", delta=5.0)
        assert D.shape == (len(X), len(Y))

    def test_agreement_with_measure_pairwise(self, X, Y):
        np.testing.assert_allclose(
            repro.pairwise_distances(X, Y, "euclidean"),
            repro.get_measure("euclidean").pairwise(X, Y),
        )


class TestDescribeMeasure:
    def test_metadata_fields(self):
        info = repro.describe_measure("msm")
        assert info["name"] == "msm"
        assert info["category"] == "elastic"
        assert info["complexity"] == "O(m^2)"
        assert isinstance(info["aliases"], list)
        (param,) = [p for p in info["params"] if p["name"] == "c"]
        assert param["grid"]  # Table 4 grid is populated

    def test_parameter_free_measure(self):
        info = repro.describe_measure("euclidean")
        assert info["params"] == []
        assert info["symmetric"] is True

    def test_resolves_aliases(self):
        assert repro.describe_measure("sbd") == repro.describe_measure("nccc")

    def test_json_serializable(self):
        import json

        for name in ("euclidean", "dtw", "kdtw", "sbd"):
            json.dumps(repro.describe_measure(name))

    def test_unknown_measure_raises(self):
        from repro.exceptions import UnknownMeasureError

        with pytest.raises(UnknownMeasureError):
            repro.describe_measure("definitely-not-a-measure")


class TestObservabilityReexports:
    def test_entry_points_exported(self):
        assert callable(repro.trace_to)
        assert callable(repro.get_recorder)
        assert callable(repro.get_bus)
        for name in ("trace_to", "get_recorder", "get_bus", "EventBus",
                     "Recorder", "JsonlSink", "ProgressSink"):
            assert name in repro.__all__

    def test_describe_measure_exported(self):
        assert "describe_measure" in repro.__all__


class TestDeprecations:
    def test_run_sweep_progress_warns_but_works(self, tiny_archive):
        datasets = tiny_archive.subset(2)
        lines = []
        with pytest.warns(DeprecationWarning, match="ProgressSink"):
            run_sweep(
                [MeasureVariant("euclidean", label="ED")],
                datasets,
                progress=lines.append,
            )
        assert len(lines) == 2
