"""Tests for the process executor and the deprecated parallel shim."""

import numpy as np
import pytest

from repro.evaluation import (
    MeasureVariant,
    run_sweep,
    run_sweep_parallel,
)
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def setup(tiny_archive):
    datasets = tiny_archive.subset(3)
    variants = [
        MeasureVariant("euclidean", label="ED"),
        MeasureVariant("lorentzian", label="Lorentzian"),
    ]
    return variants, datasets


class TestProcessExecutor:
    def test_matches_serial_results(self, setup):
        variants, datasets = setup
        serial = run_sweep(variants, datasets)
        parallel = run_sweep(variants, datasets, executor="process", workers=2)
        assert np.allclose(serial.accuracies, parallel.accuracies)
        assert serial.labels == parallel.labels
        assert serial.dataset_names == parallel.dataset_names

    def test_details_populated(self, setup):
        variants, datasets = setup
        result = run_sweep(variants, datasets, executor="process", workers=2)
        assert len(result.details) == 2
        assert all(r is not None for row in result.details for r in row)
        assert result.details[0][0].dataset == datasets[0].name

    def test_invalid_workers_rejected(self, setup):
        variants, datasets = setup
        with pytest.raises(EvaluationError):
            run_sweep(variants, datasets, executor="process", workers=0)

    def test_invalid_executor_rejected(self, setup):
        variants, datasets = setup
        with pytest.raises(EvaluationError):
            run_sweep(variants, datasets, executor="threads")

    def test_empty_inputs_rejected(self):
        with pytest.raises(EvaluationError):
            run_sweep([], [], executor="process", workers=2)

    def test_loocv_variants_supported(self, setup):
        _, datasets = setup
        variants = [
            MeasureVariant(
                "dtw", tuning="loocv",
                grid=[{"delta": 0.0}, {"delta": 10.0}], label="DTW",
            )
        ]
        serial = run_sweep(variants, datasets)
        parallel = run_sweep(variants, datasets, executor="process", workers=2)
        assert np.allclose(serial.accuracies, parallel.accuracies)


class TestDeprecatedShim:
    """``run_sweep_parallel`` must warn and delegate to ``run_sweep``."""

    def test_warns_and_matches_unified_api(self, setup):
        variants, datasets = setup
        unified = run_sweep(variants, datasets, executor="process", workers=2)
        with pytest.warns(DeprecationWarning, match="run_sweep"):
            shim = run_sweep_parallel(variants, datasets, n_jobs=2)
        assert np.allclose(unified.accuracies, shim.accuracies)
        assert unified.labels == shim.labels

    def test_single_job_falls_back_to_serial(self, setup):
        variants, datasets = setup
        with pytest.warns(DeprecationWarning):
            result = run_sweep_parallel(variants, datasets, n_jobs=1)
        assert result.accuracies.shape == (3, 2)

    def test_invalid_jobs_rejected(self, setup):
        variants, datasets = setup
        with pytest.warns(DeprecationWarning):
            with pytest.raises(EvaluationError):
                run_sweep_parallel(variants, datasets, n_jobs=0)
