"""Tests for the 1-NN framework (paper Algorithm 1) and LOOCV tuning."""

import numpy as np
import pytest

from repro.classification import (
    dissimilarity_matrix,
    evaluation_matrices,
    leave_one_out_accuracy,
    one_nn_accuracy,
    one_nn_predict,
    tune_parameters,
)
from repro.exceptions import EvaluationError


class TestOneNN:
    def test_perfect_separation(self):
        E = np.array([[0.1, 5.0], [5.0, 0.1]])
        assert one_nn_accuracy(E, [0, 1], [0, 1]) == 1.0

    def test_total_confusion(self):
        E = np.array([[5.0, 0.1], [0.1, 5.0]])
        assert one_nn_accuracy(E, [0, 1], [0, 1]) == 0.0

    def test_tie_breaks_to_first_index(self):
        """Algorithm 1 keeps the first minimum (strict < comparison)."""
        E = np.array([[1.0, 1.0, 1.0]])
        assert one_nn_predict(E, [7, 8, 9]).tolist() == [7]

    def test_fractional_accuracy(self):
        E = np.array([[0.0, 1.0], [0.0, 1.0]])
        assert one_nn_accuracy(E, [0, 1], [0, 1]) == 0.5

    def test_nan_matrix_rejected(self):
        E = np.array([[np.nan, 1.0]])
        with pytest.raises(EvaluationError, match="NaN"):
            one_nn_predict(E, [0, 1])

    def test_label_length_checked(self):
        with pytest.raises(Exception):
            one_nn_predict(np.ones((2, 3)), [0, 1])


class TestLeaveOneOut:
    def test_diagonal_excluded(self):
        # Without masking, every series would pick itself (accuracy 1).
        W = np.array(
            [
                [0.0, 1.0, 9.0],
                [1.0, 0.0, 9.0],
                [9.0, 9.0, 0.0],
            ]
        )
        labels = np.array([0, 0, 1])
        # Series 2's nearest non-self neighbor has label 0 -> misclassified.
        assert leave_one_out_accuracy(W, labels) == pytest.approx(2.0 / 3.0)

    def test_nonsquare_rejected(self):
        with pytest.raises(EvaluationError):
            leave_one_out_accuracy(np.ones((2, 3)), [0, 1])

    def test_single_series_rejected(self):
        with pytest.raises(EvaluationError):
            leave_one_out_accuracy(np.zeros((1, 1)), [0])


class TestDissimilarityMatrix:
    def test_self_matrix_square(self, small_dataset):
        W = dissimilarity_matrix("euclidean", small_dataset.train_X)
        assert W.shape == (small_dataset.n_train,) * 2
        # The vectorized ED path uses the dot-product identity, which
        # carries ~1e-7 float error on the diagonal.
        assert np.allclose(np.diag(W), 0.0, atol=1e-6)

    def test_normalization_applied(self, small_dataset):
        raw = dissimilarity_matrix(
            "euclidean", small_dataset.test_X, small_dataset.train_X
        )
        normed = dissimilarity_matrix(
            "euclidean",
            small_dataset.test_X,
            small_dataset.train_X,
            normalization="minmax",
        )
        assert not np.allclose(raw, normed)

    def test_adaptive_scaling_path(self, small_dataset):
        """AdaptiveScaling is pairwise: the matrix must equal scaling each
        comparison's second series by the optimal factor."""
        from repro.normalization import adaptive_scaling_factor

        test_X = small_dataset.test_X[:3]
        train_X = small_dataset.train_X[:4]
        E = dissimilarity_matrix(
            "euclidean", test_X, train_X, normalization="adaptive"
        )
        for i in range(3):
            for j in range(4):
                a = adaptive_scaling_factor(test_X[i], train_X[j])
                expected = float(np.linalg.norm(test_X[i] - a * train_X[j]))
                assert E[i, j] == pytest.approx(expected)

    def test_evaluation_matrices_shapes(self, small_dataset):
        W, E = evaluation_matrices("lorentzian", small_dataset)
        assert W.shape == (small_dataset.n_train,) * 2
        assert E.shape == (small_dataset.n_test, small_dataset.n_train)

    def test_evaluation_matrices_skip_train(self, small_dataset):
        W, E = evaluation_matrices(
            "lorentzian", small_dataset, need_train_matrix=False
        )
        assert W is None and E is not None


class TestTuning:
    def test_parameter_free_measure_short_circuits(self, small_dataset):
        result = tune_parameters(
            "euclidean", small_dataset.train_X, small_dataset.train_y
        )
        assert result.params == {}
        assert result.trials == ()

    def test_grid_is_swept_and_best_kept(self, small_dataset):
        grid = [{"delta": 0.0}, {"delta": 10.0}]
        result = tune_parameters(
            "dtw", small_dataset.train_X, small_dataset.train_y, grid=grid
        )
        assert result.params in grid
        assert len(result.trials) == 2
        best = max(acc for _, acc in result.trials)
        assert result.train_accuracy == best

    def test_tie_breaks_to_first_grid_entry(self, small_dataset):
        # Identical combinations force a tie; the first must win.
        grid = [{"delta": 10.0}, {"delta": 10.0}]
        result = tune_parameters(
            "dtw", small_dataset.train_X, small_dataset.train_y, grid=grid
        )
        assert result.params == {"delta": 10.0}
        assert result.trials[0][1] == result.trials[1][1]

    def test_tuning_on_shifted_data_prefers_wide_band(self, shifted_dataset):
        """On shift-dominated data LOOCV must not pick the diagonal band."""
        grid = [{"delta": 0.0}, {"delta": 100.0}]
        result = tune_parameters(
            "dtw", shifted_dataset.train_X, shifted_dataset.train_y, grid=grid
        )
        assert result.params == {"delta": 100.0}
