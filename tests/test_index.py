"""Tests for the sub-linear query path (repro.index + engine modes).

The index layer is exactness-critical in two different ways:

- **admissibility** — every exact index's lower bound must never exceed
  the true distance, for *any* inputs, across the paper's Table-4
  parameter grid (checked property-style against brute-force oracles);
- **parity** — ``mode="exact"`` answers must be bitwise-identical to
  ``mode="brute"`` (same refine kernel, pruning toggled), and the
  approximate path must clear a measured recall@1 gate on a pinned
  clustered workload.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances.elastic import dtw
from repro.exceptions import (
    ArtifactError,
    IndexBuildError,
    ServingError,
    ValidationError,
)
from repro.index import (
    DFTLowerBoundIndex,
    ISAXTreeIndex,
    PAALowerBoundIndex,
    build_index,
    indexable_kinds,
    list_index_kinds,
    normalize_index_specs,
    restore_index,
)
from repro.search import (
    NeighborResult,
    candidate_envelopes,
    cascade_nn_search,
    nearest_neighbors,
    query_envelope,
    top_k_matches,
)
from repro.serving import ModelArtifact, QueryEngine

#: Banded-DTW deltas from the paper's Table 4 tuning grid (percent band).
TABLE4_DELTAS = [0.0, 5.0, 10.0, 20.0, 100.0]


def clustered_dataset(seed=11, prototypes=8, members=25, length=64, noise=0.25):
    """Multi-prototype z-normalized data where truncated representations
    can discriminate (iid noise would concentrate all distances)."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 2 * np.pi, length)
    protos = [
        np.sin((i % 4 + 1) * t + rng.uniform(0, np.pi)) for i in range(prototypes)
    ]
    X = np.vstack(
        [p + rng.normal(0, noise, length) for p in protos for _ in range(members)]
    )
    X = (X - X.mean(axis=1, keepdims=True)) / X.std(axis=1, keepdims=True)
    y = np.repeat(np.arange(prototypes), members)
    Q = X[:: members // 2] + rng.normal(0, noise / 4, (len(X[:: members // 2]), length))
    Q = (Q - Q.mean(axis=1, keepdims=True)) / Q.std(axis=1, keepdims=True)
    return X, y, Q


@pytest.fixture(scope="module")
def workload():
    return clustered_dataset()


@st.composite
def pair_sets(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n = draw(st.integers(min_value=3, max_value=10))
    m = draw(st.integers(min_value=8, max_value=40))
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, m)) * draw(
        st.sampled_from([0.1, 1.0, 10.0])
    ), rng.normal(size=m)


class TestAdmissibility:
    """LB(q, x) <= d(q, x) for every exact index, any real inputs."""

    @given(pair_sets(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_dft_lower_bound_admissible(self, data, coefficients):
        X, q = data
        index = DFTLowerBoundIndex.build(
            X, measure="euclidean", params={}, coefficients=coefficients
        )
        true = np.sqrt(((X - q) ** 2).sum(axis=1))
        bounds = index.lower_bounds(q)
        assert np.all(bounds <= true * (1 + 1e-9) + 1e-9)

    @given(pair_sets(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_paa_euclidean_lower_bound_admissible(self, data, segments):
        X, q = data
        index = PAALowerBoundIndex.build(
            X, measure="euclidean", params={}, segments=segments
        )
        true = np.sqrt(((X - q) ** 2).sum(axis=1))
        assert np.all(index.lower_bounds(q) <= true * (1 + 1e-9) + 1e-9)

    @given(
        pair_sets(),
        st.sampled_from(TABLE4_DELTAS),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_paa_dtw_lower_bound_admissible(self, data, delta, segments):
        X, q = data
        index = PAALowerBoundIndex.build(
            X, measure="dtw", params={"delta": delta}, segments=segments
        )
        bounds = index.lower_bounds(q)
        true = np.array([dtw(q, x, delta) for x in X])
        assert np.all(bounds <= true * (1 + 1e-9) + 1e-9)

    @given(pair_sets(), st.integers(min_value=2, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_isax_region_mindist_admissible(self, data, segments):
        X, q = data
        index = ISAXTreeIndex.build(
            X, measure="euclidean", params={}, segments=segments, leaf_size=4
        )
        true = np.sqrt(((X - q) ** 2).sum(axis=1))
        assert np.all(index.lower_bounds(q) <= true * (1 + 1e-9) + 1e-9)


class TestExactParity:
    """mode='exact' must equal the unpruned scan bitwise, while pruning."""

    @pytest.mark.parametrize("kind", ["dft_lb", "paa_lb", "isax"])
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_euclidean_bitwise_parity(self, workload, kind, k):
        X, _, Q = workload
        index = build_index(kind, X, measure="euclidean", params={})
        exact_idx, exact_dist, stats = index.search(Q, k)
        brute_idx, brute_dist, _ = index.search(Q, k, prune=False)
        np.testing.assert_array_equal(exact_idx, brute_idx)
        np.testing.assert_array_equal(exact_dist, brute_dist)
        assert exact_idx.shape == (Q.shape[0], k)
        assert stats.candidates == Q.shape[0] * X.shape[0]

    @pytest.mark.parametrize("delta", [5.0, 10.0])
    @pytest.mark.parametrize("k", [1, 3])
    def test_dtw_bitwise_parity(self, workload, delta, k):
        X, _, Q = workload
        index = build_index(
            "paa_lb", X[:60], measure="dtw", params={"delta": delta}
        )
        exact_idx, exact_dist, stats = index.search(Q[:4], k)
        brute_idx, brute_dist, _ = index.search(Q[:4], k, prune=False)
        np.testing.assert_array_equal(exact_idx, brute_idx)
        np.testing.assert_array_equal(exact_dist, brute_dist)
        assert stats.pruned > 0

    def test_lower_bound_indexes_prune_clustered_data(self, workload):
        X, _, Q = workload
        for kind in ("dft_lb", "paa_lb"):
            index = build_index(kind, X, measure="euclidean", params={})
            _, _, stats = index.search(Q, 1)
            assert stats.pruning_rate > 0.4, (kind, stats)

    def test_tie_breaking_prefers_lowest_index(self):
        X = np.tile(np.linspace(-1, 1, 16), (5, 1))  # five identical rows
        index = build_index("dft_lb", X, measure="euclidean", params={})
        idx, dist, _ = index.search(X[:1], 3)
        np.testing.assert_array_equal(idx, [[0, 1, 2]])
        np.testing.assert_array_equal(dist, [[0.0, 0.0, 0.0]])

    def test_k_out_of_range_rejected(self, workload):
        X, _, Q = workload
        index = build_index("dft_lb", X, measure="euclidean", params={})
        with pytest.raises(ValidationError):
            index.search(Q, 0)
        with pytest.raises(ValidationError):
            index.search(Q, X.shape[0] + 1)


class TestRegistry:
    def test_kinds_registered(self):
        kinds = list_index_kinds()
        for kind in ("dft_lb", "paa_lb", "isax", "grail_ann", "spiral_ann"):
            assert kind in kinds

    def test_indexable_kinds_exact_only(self):
        assert "dft_lb" in indexable_kinds("euclidean")
        assert "grail_ann" not in indexable_kinds("euclidean")
        assert list(indexable_kinds("dtw")) == ["paa_lb"]

    def test_spec_normalization(self):
        assert normalize_index_specs(None) == ()
        assert normalize_index_specs("dft_lb") == ({"kind": "dft_lb"},)
        specs = normalize_index_specs([{"kind": "paa_lb", "segments": 4}])
        assert specs[0]["segments"] == 4
        with pytest.raises(IndexBuildError):
            normalize_index_specs(["dft_lb", "dft_lb"])  # duplicate kind

    def test_unknown_kind_rejected(self, workload):
        X, _, _ = workload
        with pytest.raises(IndexBuildError, match="unknown"):
            build_index("btree", X, measure="euclidean", params={})

    def test_unsupported_measure_rejected(self, workload):
        X, _, _ = workload
        with pytest.raises(IndexBuildError):
            build_index("dft_lb", X, measure="dtw", params={"delta": 10.0})


class TestApproximateRecall:
    """grail_ann on the pinned clustered workload must clear recall@1."""

    def test_recall_gate(self, workload):
        X, _, Q = workload
        index = build_index(
            {"kind": "grail_ann", "dimensions": 16}, X,
            measure="euclidean", params={},
        )
        spec = index.spec()
        assert spec["recall"] >= 0.95
        approx_idx, _, _ = index.search(Q, 1)
        exact = build_index("dft_lb", X, measure="euclidean", params={})
        exact_idx, _, _ = exact.search(Q, 1)
        recall = float(np.mean(approx_idx[:, 0] == exact_idx[:, 0]))
        assert recall >= 0.95

    def test_min_recall_build_gate_fails_on_noise(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(64, 48))  # iid noise: embeddings can't rank
        with pytest.raises(IndexBuildError, match="recall"):
            build_index(
                {"kind": "grail_ann", "dimensions": 4, "min_recall": 0.99},
                X, measure="euclidean", params={},
            )

    def test_k_capped_by_rerank(self, workload):
        X, _, Q = workload
        index = build_index(
            {"kind": "grail_ann", "rerank": 8}, X,
            measure="euclidean", params={},
        )
        with pytest.raises(ValidationError):
            index.search(Q, 9)


class TestSerialization:
    def test_roundtrip_preserves_answers_and_fingerprint(
        self, workload, tmp_path
    ):
        X, y, Q = workload
        art = ModelArtifact.fit(
            X, y, measure="euclidean", normalization="zscore",
            index=["dft_lb", "grail_ann"],
        )
        art.save(tmp_path / "art")
        loaded = ModelArtifact.load(tmp_path / "art")
        assert loaded.fingerprint == art.fingerprint
        assert loaded.index_specs == art.index_specs
        before = QueryEngine(art).search(Q, k=3)
        after = QueryEngine(loaded).search(Q, k=3)
        np.testing.assert_array_equal(
            before.neighbor_indices, after.neighbor_indices
        )
        np.testing.assert_array_equal(
            before.neighbor_distances, after.neighbor_distances
        )
        ap_before = QueryEngine(art).search(Q, k=1, mode="approx")
        ap_after = QueryEngine(loaded).search(Q, k=1, mode="approx")
        np.testing.assert_array_equal(
            ap_before.neighbor_indices, ap_after.neighbor_indices
        )

    def test_index_changes_fingerprint(self, workload):
        X, y, _ = workload
        plain = ModelArtifact.fit(X, y, measure="euclidean")
        indexed = ModelArtifact.fit(X, y, measure="euclidean", index="dft_lb")
        assert plain.fingerprint != indexed.fingerprint
        assert plain.index_specs == ()

    def test_tampered_index_array_refused(self, workload, tmp_path):
        X, y, _ = workload
        art = ModelArtifact.fit(X, y, measure="euclidean", index="dft_lb")
        art.save(tmp_path / "art")
        path = tmp_path / "art" / "arrays.npz"
        with np.load(path) as z:
            arrays = {name: z[name].copy() for name in z.files}
        key = next(name for name in arrays if name.startswith("index0_"))
        arrays[key][0] += 1e-3
        np.savez_compressed(path, **arrays)
        with pytest.raises(ArtifactError):
            ModelArtifact.load(tmp_path / "art")

    def test_standalone_index_restore(self, workload):
        X, _, Q = workload
        index = build_index("isax", X, measure="euclidean", params={})
        revived = restore_index(
            index.spec(), index.arrays(), X, measure="euclidean", params={}
        )
        a = index.search(Q, 2)
        b = revived.search(Q, 2)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


class TestEngineModes:
    @pytest.fixture(scope="class")
    def engine(self, workload):
        X, y, _ = workload
        art = ModelArtifact.fit(
            X, y, measure="euclidean", normalization="zscore",
            index=["dft_lb", "grail_ann"],
        )
        return QueryEngine(art)

    def test_exact_equals_brute_bitwise(self, workload, engine):
        _, _, Q = workload
        exact = engine.search(Q, k=3, mode="exact")
        brute = engine.search(Q, k=3, mode="brute")
        np.testing.assert_array_equal(
            exact.neighbor_indices, brute.neighbor_indices
        )
        np.testing.assert_array_equal(
            exact.neighbor_distances, brute.neighbor_distances
        )
        assert exact.pruned > 0 and brute.pruned == 0

    def test_predict_is_k1_search(self, workload, engine):
        _, _, Q = workload
        labels = engine.predict(Q)
        np.testing.assert_array_equal(labels, engine.search(Q).labels)

    def test_k1_squeeze_back_compat(self, workload, engine):
        _, _, Q = workload
        p1 = engine.search(Q, k=1)
        assert p1.neighbor_indices.shape == (Q.shape[0], 1)
        assert p1.indices.shape == (Q.shape[0],)  # documented squeeze
        p3 = engine.search(Q, k=3)
        assert p3.indices.shape == (Q.shape[0], 3)

    def test_named_index_selection(self, workload, engine):
        _, _, Q = workload
        named = engine.search(Q, k=2, index="dft_lb")
        default = engine.search(Q, k=2)
        np.testing.assert_array_equal(
            named.neighbor_indices, default.neighbor_indices
        )
        with pytest.raises(ServingError, match="no fitted index"):
            engine.search(Q, index="paa_lb")

    def test_mode_index_mismatch_rejected(self, workload, engine):
        _, _, Q = workload
        with pytest.raises(ServingError):
            engine.search(Q, mode="approx", index="dft_lb")
        with pytest.raises(ServingError):
            engine.search(Q, mode="exact", index="grail_ann")
        with pytest.raises(ServingError, match="mode"):
            engine.search(Q, mode="fastest")

    def test_k_validated(self, workload, engine):
        X, _, Q = workload
        with pytest.raises(ServingError):
            engine.search(Q, k=0)
        with pytest.raises(ServingError):
            engine.search(Q, k=X.shape[0] + 1)

    def test_approx_without_ann_index_rejected(self, workload):
        X, y, Q = workload
        art = ModelArtifact.fit(X, y, measure="euclidean", index="dft_lb")
        with pytest.raises(ServingError, match="approx"):
            QueryEngine(art).search(Q, mode="approx")

    def test_cache_keyed_by_k_and_mode(self, workload, engine):
        _, _, Q = workload
        fresh = QueryEngine(engine.artifact, cache_size=64)
        assert fresh.search(Q[:3], k=2).cache_hits == 0
        assert fresh.search(Q[:3], k=2).cache_hits == 3
        # Different k or mode must not alias the cached rows.
        assert fresh.search(Q[:3], k=3).cache_hits == 0
        assert fresh.search(Q[:3], k=2, mode="brute").cache_hits == 0
        assert fresh.search(Q[:3], k=2, mode="approx").cache_hits == 0

    def test_scan_engine_supports_topk(self, workload):
        X, y, Q = workload
        art = ModelArtifact.fit(X, y, measure="euclidean")  # no index
        pred = QueryEngine(art).search(Q, k=4)
        matrix_order = np.argsort(
            ((Q[:, None, :] - X[None]) ** 2).sum(axis=2), axis=1, kind="stable"
        )[:, :4]
        np.testing.assert_array_equal(pred.neighbor_indices, matrix_order)


class TestFacade:
    def test_whole_series_index_matches_exhaustive(self, workload):
        X, _, Q = workload
        plain = nearest_neighbors(Q, X, measure="euclidean", k=3)
        indexed = nearest_neighbors(Q, X, measure="euclidean", k=3,
                                    index="paa_lb")
        assert isinstance(plain, NeighborResult)
        np.testing.assert_array_equal(plain.indices, indexed.indices)
        np.testing.assert_allclose(
            plain.distances, indexed.distances, rtol=1e-9
        )
        assert indexed.engine == "index:paa_lb"
        assert indexed.extras["exact"] is True

    def test_dtw_cascade_route(self, workload):
        X, _, Q = workload
        res = nearest_neighbors(
            Q[:3], X[:40], measure="dtw", k=1, params={"delta": 10.0}
        )
        assert res.engine == "cascade"
        true = np.array([[dtw(q, x, 10.0) for x in X[:40]] for q in Q[:3]])
        np.testing.assert_array_equal(
            res.indices[:, 0], true.argmin(axis=1)
        )

    def test_subsequence_domain(self):
        rng = np.random.default_rng(5)
        pattern = np.sin(np.linspace(0, 4 * np.pi, 50))
        stream = np.concatenate(
            [rng.normal(0, 1, 200), pattern, rng.normal(0, 1, 200)]
        )
        res = nearest_neighbors(pattern, stream, domain="subsequence", k=2)
        assert res.engine == "mass"
        assert res.indices[0, 0] == 200

    def test_profile_domain(self):
        rng = np.random.default_rng(6)
        series = rng.normal(size=400)
        res = nearest_neighbors(series, domain="profile", window=40)
        assert res.engine == "matrix_profile"
        assert res.indices.shape == (400 - 40 + 1, 1)

    def test_domain_validation(self, workload):
        X, _, Q = workload
        with pytest.raises(ValidationError, match="domain"):
            nearest_neighbors(Q, X, domain="nearest")
        with pytest.raises(ValidationError, match="references"):
            nearest_neighbors(Q, domain="whole")
        with pytest.raises(ValidationError, match="window"):
            nearest_neighbors(X[0], domain="profile")
        with pytest.raises(ValidationError, match="self-join"):
            nearest_neighbors(X[0], X[1], domain="profile", window=8)


class TestDeprecationShims:
    """Legacy positional spellings still work, but warn exactly once."""

    @pytest.fixture(scope="class")
    def corpus(self):
        rng = np.random.default_rng(3)
        return rng.normal(size=(6, 32)), rng.normal(size=32)

    def test_cascade_positional_delta_warns(self, corpus):
        X, q = corpus
        with pytest.warns(DeprecationWarning, match="positionally"):
            legacy = cascade_nn_search(q, X, 10.0)
        modern = cascade_nn_search(q, X, delta=10.0)
        assert legacy[0] == modern[0] and legacy[1] == modern[1]

    def test_candidate_envelopes_positional_delta_warns(self, corpus):
        X, _ = corpus
        with pytest.warns(DeprecationWarning):
            legacy = candidate_envelopes(X, 10.0)
        np.testing.assert_array_equal(legacy, candidate_envelopes(X, delta=10.0))

    def test_top_k_matches_positional_k_warns(self, corpus):
        _, q = corpus
        series = np.concatenate([q, q, q])
        with pytest.warns(DeprecationWarning):
            legacy = top_k_matches(q, series, 2)
        assert legacy == top_k_matches(q, series, k=2)

    def test_keyword_calls_do_not_warn(self, corpus):
        X, q = corpus
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cascade_nn_search(q, X, delta=10.0)
            candidate_envelopes(X, delta=10.0)

    def test_too_many_positionals_rejected(self, corpus):
        X, q = corpus
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                cascade_nn_search(q, X, 10.0, None, "extra")

    def test_query_envelope_precompute_identical(self, corpus):
        X, q = corpus
        env = query_envelope(q, delta=10.0)
        assert env.shape == (2, q.shape[0])
        a = cascade_nn_search(q, X, delta=10.0)
        b = cascade_nn_search(q, X, delta=10.0, query_envelope=env)
        assert a[0] == b[0] and a[1] == b[1]
        with pytest.raises(ValueError, match="query_envelope"):
            cascade_nn_search(
                q, X, delta=10.0, query_envelope=np.zeros((2, 4))
            )
