"""Tests for sparkline rendering and archive statistics."""

import numpy as np
import pytest

from repro.datasets import DatasetSpec, generate_dataset
from repro.datasets.stats import archive_stats
from repro.exceptions import DatasetError
from repro.reporting import sparkline, sparkline_pair


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline(np.arange(10.0))) == 10

    def test_width_resamples(self):
        assert len(sparkline(np.arange(100.0), width=20)) == 20

    def test_monotone_series_monotone_levels(self):
        line = sparkline(np.arange(8.0))
        assert line == "".join(sorted(line))
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant_series_flat(self):
        line = sparkline(np.full(6, 2.0))
        assert len(set(line)) == 1

    def test_pair_rendering(self, sine_pair):
        x, y = sine_pair
        text = sparkline_pair(x, y, width=20, labels=("a", "bb"))
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert lines[1].startswith("bb ")


class TestArchiveStats:
    def test_describes_collection(self, tiny_archive):
        datasets = tiny_archive.subset(4)
        stats = archive_stats(datasets)
        assert stats.n_datasets == 4
        assert stats.min_series <= stats.max_series
        assert stats.min_length <= stats.max_length
        text = stats.describe()
        assert "4 datasets" in text

    def test_balanced_off_by_one_not_counted(self):
        # 20 series over 3 classes: sizes 7/7/6 — not imbalance.
        spec = DatasetSpec(
            name="B", domain="sensor", n_classes=3, length=24,
            train_size=20, test_size=10, seed=3,
        )
        stats = archive_stats([generate_dataset(spec)])
        assert stats.imbalanced_datasets == 0

    def test_true_imbalance_counted(self):
        spec = DatasetSpec(
            name="I", domain="sensor", n_classes=3, length=24,
            train_size=24, test_size=10, seed=3, imbalanced=True,
        )
        stats = archive_stats([generate_dataset(spec)])
        assert stats.imbalanced_datasets == 1

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            archive_stats([])
