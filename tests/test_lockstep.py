"""Unit tests for the 52 lock-step measures (paper Section 5)."""

import numpy as np
import pytest

from repro.distances import get_measure, iter_measures, list_measures
from repro.distances.lockstep import (
    avg_l1_linf,
    canberra,
    chebyshev,
    clark,
    cosine,
    dice,
    dissim,
    euclidean,
    gower,
    jaccard,
    lorentzian,
    manhattan,
    minkowski,
    soergel,
    squared_euclidean,
    topsoe,
)
from repro.distances.lockstep.special import asd
from repro.exceptions import ParameterError, UnknownMeasureError


class TestCensus:
    def test_52_lockstep_measures(self):
        assert len(list_measures("lockstep")) == 52

    def test_family_cardinalities_match_cha_survey(self):
        expected = {
            "minkowski": 4,
            "l1": 6,
            "intersection": 7,
            "inner_product": 6,
            "fidelity": 5,
            "squared_l2": 8,
            "entropy": 6,
            "combination": 3,
            "vicissitude": 5,
            "special": 2,
        }
        for family, count in expected.items():
            assert len(list_measures("lockstep", family)) == count, family

    def test_unknown_measure_raises_with_hint(self):
        with pytest.raises(UnknownMeasureError):
            get_measure("lorentz")  # not an alias

    def test_emanon_aliases(self):
        assert get_measure("emanon4").name == "vicissymmetric3"
        assert get_measure("emanon1").name == "viciswavehedges"


class TestMinkowskiFamily:
    def test_euclidean_known_value(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_manhattan_known_value(self):
        assert manhattan(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 7.0

    def test_chebyshev_known_value(self):
        assert chebyshev(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 4.0

    def test_minkowski_interpolates_lp(self):
        x, y = np.array([0.0, 0.0]), np.array([3.0, 4.0])
        assert minkowski(x, y, p=1.0) == pytest.approx(manhattan(x, y))
        assert minkowski(x, y, p=2.0) == pytest.approx(euclidean(x, y))
        assert minkowski(x, y, p=np.inf) == pytest.approx(chebyshev(x, y))

    def test_fractional_p_supported(self):
        x, y = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        assert minkowski(x, y, p=0.5) == pytest.approx(4.0)

    def test_minkowski_requires_known_param_name(self):
        with pytest.raises(ParameterError):
            get_measure("minkowski")(np.ones(3), np.zeros(3), q=2)

    def test_param_grid_has_20_values(self):
        assert len(get_measure("minkowski").param_grid()) == 20


class TestL1Family:
    def test_lorentzian_log_damped(self):
        x, y = np.zeros(2), np.array([np.e - 1.0, 0.0])
        assert lorentzian(x, y) == pytest.approx(1.0)

    def test_lorentzian_less_sensitive_to_spikes_than_ed(self):
        clean = np.zeros(20)
        spike = np.zeros(20)
        spike[10] = 100.0
        small = np.full(20, 1.0)
        # ED treats one huge spike as worse than many small deviations;
        # Lorentzian's log damping reverses that judgement.
        assert euclidean(clean, spike) > euclidean(clean, small)
        assert lorentzian(clean, spike) < lorentzian(clean, small)

    def test_gower_is_mean_abs(self):
        x, y = np.zeros(4), np.array([1.0, 2.0, 3.0, 4.0])
        assert gower(x, y) == pytest.approx(2.5)

    def test_soergel_known_value(self, positive_pair):
        x, y = positive_pair
        expected = np.abs(x - y).sum() / np.maximum(x, y).sum()
        assert soergel(x, y) == pytest.approx(expected)

    def test_canberra_bounded_by_length(self, positive_pair):
        x, y = positive_pair
        assert 0.0 <= canberra(x, y) <= x.shape[0]


class TestInnerProductFamily:
    def test_cosine_orthogonal(self):
        assert cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_cosine_identical_zero(self):
        x = np.array([1.0, 2.0, 3.0])
        assert cosine(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_jaccard_equals_one_minus_kumar_hassebrook(self, positive_pair):
        x, y = positive_pair
        kh = get_measure("kumarhassebrook")
        assert jaccard(x, y) == pytest.approx(kh.func(x, y))

    def test_dice_known_value(self):
        x, y = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert dice(x, y) == pytest.approx(1.0)


class TestSquaredL2Family:
    def test_squared_euclidean_is_ed_squared(self, sine_pair):
        x, y = sine_pair
        assert squared_euclidean(x, y) == pytest.approx(euclidean(x, y) ** 2)

    def test_clark_bounded(self, positive_pair):
        x, y = positive_pair
        assert 0.0 <= clark(x, y) <= np.sqrt(x.shape[0])

    def test_pearson_neyman_asymmetric(self, positive_pair):
        x, y = positive_pair
        pearson = get_measure("pearsonchi2")
        assert pearson(x, y) != pytest.approx(pearson(y, x))
        assert not pearson.symmetric


class TestEntropyFamily:
    def test_kl_zero_for_identical(self, positive_pair):
        x, _ = positive_pair
        assert get_measure("kl")(x, x) == pytest.approx(0.0, abs=1e-9)

    def test_topsoe_is_twice_jensen_shannon(self, positive_pair):
        x, y = positive_pair
        js = get_measure("jensenshannon")
        assert topsoe(x, y) == pytest.approx(2.0 * js.func(x, y))

    def test_jensen_shannon_symmetric(self, positive_pair):
        x, y = positive_pair
        js = get_measure("jensenshannon")
        assert js(x, y) == pytest.approx(js(y, x))

    def test_entropy_finite_for_zscored_inputs(self, sine_pair):
        # z-scored series contain negatives; the nonneg guard must keep
        # every entropy measure finite (the paper pairs them with MinMax,
        # but the framework sweeps every combination).
        x, y = sine_pair
        for name in ("kl", "jeffreys", "kdivergence", "topsoe", "jensenshannon", "jensendifference"):
            assert np.isfinite(get_measure(name)(x, y)), name


class TestCombinationsAndVicissitude:
    def test_avg_l1_linf_definition(self, sine_pair):
        x, y = sine_pair
        assert avg_l1_linf(x, y) == pytest.approx(
            (manhattan(x, y) + chebyshev(x, y)) / 2.0
        )

    def test_emanon4_uses_max_denominator(self):
        x, y = np.array([1.0, 2.0]), np.array([2.0, 4.0])
        expected = 1.0 / 2.0 + 4.0 / 4.0
        assert get_measure("emanon4")(x, y) == pytest.approx(expected)

    def test_max_symmetric_at_least_min_symmetric(self, positive_pair):
        x, y = positive_pair
        assert get_measure("emanon5")(x, y) >= get_measure("emanon6")(x, y)


class TestSpecialMeasures:
    def test_dissim_is_trapezoidal_l1(self):
        x = np.array([0.0, 0.0, 0.0])
        y = np.array([2.0, 4.0, 6.0])
        assert dissim(x, y) == pytest.approx((2 + 4) / 2 + (4 + 6) / 2)

    def test_dissim_single_point(self):
        assert dissim(np.array([1.0]), np.array([4.0])) == pytest.approx(3.0)

    def test_asd_scale_invariant_in_second_argument(self, sine_pair):
        x, y = sine_pair
        assert asd(x, 5.0 * y) == pytest.approx(asd(x, y), abs=1e-9)

    def test_asd_zero_for_scaled_copy(self, sine_pair):
        x, _ = sine_pair
        assert asd(x, 3.0 * x) == pytest.approx(0.0, abs=1e-9)

    def test_asd_against_zero_reference(self):
        assert asd(np.ones(4), np.zeros(4)) == pytest.approx(2.0)


class TestGenericContracts:
    @pytest.mark.parametrize("name", list_measures("lockstep"))
    def test_identity_is_minimal(self, name, positive_pair):
        """d(x, x) <= d(x, y) for a generic pair — the sanity every 1-NN
        evaluation relies on (not full metric axioms; many survey measures
        are not metrics). Probability-style measures get unit-mass inputs,
        their intended domain (e.g. Fidelity's 1 - sum(sqrt(xy)) is only
        identity-minimal for densities)."""
        x, y = positive_pair
        measure = get_measure(name)
        if measure.requires_nonnegative:
            x = x / x.sum()
            y = y / y.sum()
        assert measure(x, x) <= measure(x, y) + 1e-9

    @pytest.mark.parametrize("name", list_measures("lockstep"))
    def test_finite_on_zscored_data(self, name, sine_pair):
        x, y = sine_pair
        x = (x - x.mean()) / x.std()
        y = (y - y.mean()) / y.std()
        assert np.isfinite(get_measure(name)(x, y)), name

    @pytest.mark.parametrize(
        "name", [n for n in list_measures("lockstep") if get_measure(n).symmetric]
    )
    def test_declared_symmetry_holds(self, name, positive_pair):
        x, y = positive_pair
        measure = get_measure(name)
        assert measure(x, y) == pytest.approx(measure(y, x), rel=1e-9)

    @pytest.mark.parametrize("name", list_measures("lockstep"))
    def test_matrix_matches_scalar_loop(self, name, rng):
        """The vectorized matrix_func (when present) must agree with the
        scalar function pair by pair."""
        measure = get_measure(name)
        X = rng.uniform(0.1, 1.0, size=(4, 12))
        Y = rng.uniform(0.1, 1.0, size=(3, 12))
        matrix = measure.pairwise(X, Y)
        for i in range(4):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(
                    measure(X[i], Y[j]), rel=1e-7, abs=1e-9
                ), name
